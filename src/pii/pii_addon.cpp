#include "src/pii/pii_addon.hpp"

#include <algorithm>

#include "src/pii/crypto_pan.hpp"
#include "src/util/strings.hpp"

namespace confmask {

namespace {

/// Deterministic AS-number map into the private 16-bit range.
int hash_as(std::uint64_t key, int as_number) {
  std::uint64_t state = key ^ (static_cast<std::uint64_t>(as_number) << 13);
  state += 0x9E3779B97F4A7C15ULL;
  state = (state ^ (state >> 30)) * 0xBF58476D1CE4E5B9ULL;
  state ^= state >> 31;
  return 64512 + static_cast<int>(state % 1023);  // 64512..65534
}

/// True if a passthrough line carries a credential-like payload.
bool is_secret_line(std::string_view line) {
  for (const char* marker :
       {"enable secret", "enable password", "username ",
        "snmp-server community", "key-string", "tacacs", "radius"}) {
    if (line.find(marker) != std::string_view::npos) return true;
  }
  return false;
}

/// Replaces everything after the first two tokens with a placeholder.
std::string scrub_line(std::string_view line) {
  const auto tokens = split_ws(line);
  std::string out;
  for (std::size_t i = 0; i < std::min<std::size_t>(2, tokens.size()); ++i) {
    if (i != 0) out += ' ';
    out += std::string(tokens[i]);
  }
  out += " <removed>";
  return out;
}

}  // namespace

PiiResult apply_pii_addon(const ConfigSet& configs,
                          const PiiOptions& options) {
  PiiResult result;
  result.configs = configs;
  // Class-preserving (first octet fixed) so classful RIP statements and
  // address-class semantics survive the renumbering.
  const PrefixPreservingAnonymizer pan(options.key,
                                       /*preserved_prefix_bits=*/8);

  // ---- device renaming ----------------------------------------------
  if (options.rename_devices) {
    int router_counter = 0;
    int host_counter = 0;
    for (const auto& router : configs.routers) {
      result.device_names[router.hostname] =
          "R" + std::to_string(++router_counter);
    }
    for (const auto& host : configs.hosts) {
      result.device_names[host.hostname] =
          "H" + std::to_string(++host_counter);
    }
  }
  const auto renamed = [&](const std::string& name) {
    const auto it = result.device_names.find(name);
    return it == result.device_names.end() ? name : it->second;
  };

  // ---- AS hashing: build the map first so collisions can be resolved
  // consistently ---------------------------------------------------------
  if (options.hash_as_numbers) {
    for (const auto& router : configs.routers) {
      if (!router.bgp) continue;
      const auto consider = [&](int as_number) {
        if (result.as_numbers.count(as_number) != 0) return;
        int candidate = hash_as(options.key, as_number);
        // Linear probing on collision keeps the map injective.
        const auto taken = [&](int value) {
          return std::any_of(result.as_numbers.begin(),
                             result.as_numbers.end(), [&](const auto& kv) {
                               return kv.second == value;
                             });
        };
        while (taken(candidate)) {
          candidate = 64512 + (candidate - 64512 + 1) % 1023;
        }
        result.as_numbers[as_number] = candidate;
      };
      consider(router.bgp->local_as);
      for (const auto& neighbor : router.bgp->neighbors) {
        consider(neighbor.remote_as);
      }
    }
  }
  const auto mapped_as = [&](int as_number) {
    const auto it = result.as_numbers.find(as_number);
    return it == result.as_numbers.end() ? as_number : it->second;
  };

  // ---- rewrite routers -------------------------------------------------
  for (auto& router : result.configs.routers) {
    router.hostname = renamed(router.hostname);
    for (auto& iface : router.interfaces) {
      if (options.anonymize_ips && iface.address) {
        iface.address = pan.anonymize(*iface.address);
      }
      if (options.rename_devices && starts_with(iface.description, "to-")) {
        iface.description = "to-" + renamed(iface.description.substr(3));
      }
      if (options.scrub_secrets) {
        for (auto& line : iface.extra_lines) {
          if (is_secret_line(line)) {
            line = scrub_line(line);
            ++result.scrubbed_lines;
          }
        }
      }
    }
    if (options.anonymize_ips) {
      if (router.ospf) {
        for (auto& network : router.ospf->networks) {
          network.prefix = pan.anonymize(network.prefix);
        }
      }
      if (router.rip) {
        for (auto& network : router.rip->networks) {
          // Classful statements must stay classful: keep the class bits
          // by re-canonicalizing to the original classful length.
          const int length = network.classful_prefix_length();
          network = Ipv4Prefix{pan.anonymize(network), length}.network();
        }
      }
      if (router.bgp) {
        for (auto& network : router.bgp->networks) {
          network = pan.anonymize(network);
        }
        for (auto& neighbor : router.bgp->neighbors) {
          neighbor.address = pan.anonymize(neighbor.address);
        }
      }
      for (auto& list : router.prefix_lists) {
        for (auto& entry : list.entries) {
          entry.prefix = pan.anonymize(entry.prefix);
        }
      }
    }
    if (options.hash_as_numbers && router.bgp) {
      router.bgp->local_as = mapped_as(router.bgp->local_as);
      for (auto& neighbor : router.bgp->neighbors) {
        neighbor.remote_as = mapped_as(neighbor.remote_as);
      }
    }
    if (options.scrub_secrets) {
      for (auto& line : router.extra_lines) {
        if (is_secret_line(line)) {
          line = scrub_line(line);
          ++result.scrubbed_lines;
        }
      }
    }
  }

  // ---- rewrite hosts ----------------------------------------------------
  for (auto& host : result.configs.hosts) {
    host.hostname = renamed(host.hostname);
    if (options.anonymize_ips) {
      host.address = pan.anonymize(host.address);
      host.gateway = pan.anonymize(host.gateway);
    }
    if (options.scrub_secrets) {
      for (auto& line : host.extra_lines) {
        if (is_secret_line(line)) {
          line = scrub_line(line);
          ++result.scrubbed_lines;
        }
      }
    }
  }
  return result;
}

}  // namespace confmask
