// Prefix-preserving IP address anonymization.
//
// The same construction as TCPdpriv / Crypto-PAn (Xu et al., ICNP'02),
// which the paper lists as the compatible PII add-on (§9): a keyed,
// deterministic bijection F on IPv4 addresses such that two addresses
// share exactly an n-bit prefix iff their images do. Prefix preservation
// is what makes the rewrite safe for configurations: subnet membership,
// longest-prefix matching and wildcard coverage all survive, so the
// rewritten network simulates identically (modulo the renumbering).
//
// We instantiate the per-prefix PRF with splitmix64 instead of AES —
// cryptographic strength is not the property under study here, the
// *structure* is; swapping in a real block cipher is a one-line change.
#pragma once

#include <cstdint>

#include "src/util/ipv4.hpp"

namespace confmask {

class PrefixPreservingAnonymizer {
 public:
  /// `preserved_prefix_bits` leading bits are copied through unchanged.
  /// The PII add-on uses 8 (class-preserving): classful `network`
  /// statements (RIP) keep their meaning, and special-purpose blocks stay
  /// recognizable as such — the same default NetConan applies.
  explicit PrefixPreservingAnonymizer(std::uint64_t key,
                                      int preserved_prefix_bits = 0)
      : key_(key), preserved_bits_(preserved_prefix_bits) {}

  /// Deterministic prefix-preserving bijection.
  [[nodiscard]] Ipv4Address anonymize(Ipv4Address address) const;

  /// Rewrites the network address of a prefix; the length is unchanged.
  /// Because the map is prefix-preserving, every address inside the
  /// original prefix maps inside the rewritten one.
  [[nodiscard]] Ipv4Prefix anonymize(const Ipv4Prefix& prefix) const;

 private:
  std::uint64_t key_;
  int preserved_bits_;
};

/// Number of leading bits two addresses share (0..32).
[[nodiscard]] int common_prefix_length(Ipv4Address a, Ipv4Address b);

}  // namespace confmask
