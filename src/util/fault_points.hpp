// Test-only fault-injection hook registry.
//
// The robustness of the guarded pipeline runner (retry/fallback ladder,
// fail-closed verification gate) is proven by *forcing* the failure modes it
// guards against — allocator exhaustion, infeasible k-degree sequences,
// equivalence non-convergence, verification divergence — at deterministic
// points, rather than hoping a network triggers them. Production code marks
// those points with `faults::fire("confmask.<site>")`; tests arm them with a
// count of how many queries should fail.
//
// The registry is compiled in only when the CMake option
// CONFMASK_FAULT_INJECTION is ON (the default, so the shipped test suite
// exercises every ladder rung). When OFF, `fire()` is a constexpr false and
// every hook branch compiles away — zero cost and no way to arm faults in a
// hardened build. Even when compiled in, an un-armed registry costs one
// relaxed atomic load per hook.
//
// For end-to-end CLI tests (which cannot call arm() in-process), armings can
// be passed through the environment variable CONFMASK_FAULTS as a
// comma-separated list of `point=count` pairs, read once on first use.
#pragma once

#include <string_view>

namespace confmask::faults {

// Well-known fault point names (shared between production hooks and tests).
inline constexpr std::string_view kPrefixPoolExhausted =
    "confmask.prefix_allocator.exhausted";
inline constexpr std::string_view kKDegreeInfeasible =
    "confmask.k_degree.infeasible";
inline constexpr std::string_view kRouteEquivalenceNonConvergent =
    "confmask.route_equivalence.nonconvergent";
inline constexpr std::string_view kVerificationDiverge =
    "confmask.verification.diverge";

#if defined(CONFMASK_FAULT_INJECTION)

/// Arms `point` so the next `count` fire() queries on it return true.
/// Re-arming replaces the previous count.
void arm(std::string_view point, int count);

/// Disarms every point and forgets environment-provided armings.
void disarm_all();

/// Queries the hook: true iff `point` is armed with a remaining count > 0
/// (the count is decremented). False for unknown/disarmed points.
bool fire(std::string_view point);

/// Remaining fire count for `point` (0 if disarmed).
[[nodiscard]] int remaining(std::string_view point);

/// Discards all armings and re-reads CONFMASK_FAULTS from the current
/// environment. The env var is normally parsed once per process; tests of
/// the parsing itself need to re-trigger it after setenv().
void reload_env_for_testing();

#else  // fault injection compiled out: hooks vanish entirely.

inline void arm(std::string_view, int) {}
inline void disarm_all() {}
inline void reload_env_for_testing() {}
inline constexpr bool fire(std::string_view) { return false; }
[[nodiscard]] inline constexpr int remaining(std::string_view) { return 0; }

#endif

}  // namespace confmask::faults
