// Cooperative cancellation and deadlines for long-running pipeline work.
//
// A CancelToken is an out-of-band kill switch: the owner (the job
// scheduler, a CLI signal handler) arms it — by explicit request_cancel()
// or by setting a deadline — and the running pipeline polls it at safe
// points. "Safe points" are the natural round boundaries of the engine:
// the top of every Algorithm-1 iteration, every Algorithm-2 rollback
// round, every Simulation build, and every guarded-runner attempt. Between
// polls the work is uninterruptible by design — tearing a simulation down
// mid-fanout would leave no consistent state to report — so cancellation
// latency is bounded by one phase, never by the whole job.
//
// Polling is ambient rather than parameter-threaded: installing a
// CancelScope on the orchestration thread makes the token visible to every
// poll_cancellation() call beneath it (the same thread-scoped pattern as
// PipelineTrace). Deep layers stay signature-stable, and code running
// without a scope polls for free against a null token. Pool worker threads
// never poll — only the orchestration thread does, which is what bounds
// the stop to a phase boundary.
//
// A fired poll throws OperationCancelled, which the error taxonomy
// (core/errors.hpp) translates into the DeadlineExceeded category:
// non-retryable, never cached, fail-closed like every other failure.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>

namespace confmask {

class CancelToken {
 public:
  enum class Reason {
    kNone,       ///< not fired
    kCancelled,  ///< explicit request_cancel()
    kDeadline,   ///< the deadline passed
  };

  /// Fires the token permanently. Safe from any thread, any time.
  void request_cancel() noexcept {
    cancelled_.store(true, std::memory_order_release);
  }

  /// Arms a deadline `budget_ms` milliseconds from now (0 = no deadline).
  /// The token fires once steady_clock passes it.
  void set_deadline_after(std::uint64_t budget_ms) noexcept {
    if (budget_ms == 0) return;
    const auto when = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(budget_ms);
    deadline_ns_.store(when.time_since_epoch().count(),
                       std::memory_order_release);
  }

  /// Why the token has fired (kNone if it has not). An explicit cancel
  /// wins over a simultaneously-expired deadline — the operator asked.
  [[nodiscard]] Reason fired() const noexcept {
    if (cancelled_.load(std::memory_order_acquire)) return Reason::kCancelled;
    const auto deadline = deadline_ns_.load(std::memory_order_acquire);
    if (deadline != 0 &&
        std::chrono::steady_clock::now().time_since_epoch().count() >=
            deadline) {
      return Reason::kDeadline;
    }
    return Reason::kNone;
  }

 private:
  std::atomic<bool> cancelled_{false};
  /// steady_clock deadline as raw since-epoch ticks; 0 = none.
  std::atomic<std::chrono::steady_clock::rep> deadline_ns_{0};
};

[[nodiscard]] const char* to_string(CancelToken::Reason reason);

/// Thrown by poll_cancellation() when the ambient token has fired. Deep
/// layers let it escape; the stage-boundary translator maps it to the
/// DeadlineExceeded error category with the reason preserved.
class OperationCancelled : public std::runtime_error {
 public:
  explicit OperationCancelled(CancelToken::Reason reason);
  [[nodiscard]] CancelToken::Reason reason() const { return reason_; }

 private:
  CancelToken::Reason reason_;
};

/// RAII install of `token` as this thread's ambient cancellation token.
/// Scopes nest; the previous token is restored on destruction. A null
/// token is a valid (never-firing) scope.
class CancelScope {
 public:
  explicit CancelScope(const CancelToken* token) noexcept;
  ~CancelScope();

  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

  /// The innermost token installed on this thread (nullptr outside any
  /// scope).
  [[nodiscard]] static const CancelToken* current() noexcept;

 private:
  const CancelToken* previous_;
};

/// Polls the ambient token; throws OperationCancelled iff it has fired.
/// One relaxed pointer read + one atomic load when un-fired — cheap enough
/// for every round boundary.
void poll_cancellation();

}  // namespace confmask
