#include "src/util/hash.hpp"

namespace confmask {

std::uint64_t fnv1a64(std::string_view bytes) {
  Fnv1a64 hasher;
  hasher.update(bytes);
  return hasher.value();
}

std::string hex64(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xF];
    value >>= 4;
  }
  return out;
}

std::optional<std::uint64_t> parse_hex64(std::string_view text) {
  if (text.size() != 16) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return std::nullopt;
    }
    value = (value << 4) | static_cast<std::uint64_t>(digit);
  }
  return value;
}

}  // namespace confmask
