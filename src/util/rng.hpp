// Deterministic pseudo-random number generation.
//
// Every randomized step in the repository (Algorithm 2 noise, topology
// realization tie-breaking, synthetic network growth) draws from an explicit
// Rng instance seeded by the caller, so that every benchmark table is
// reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

namespace confmask {

/// xoshiro256** by Blackman & Vigna, seeded via splitmix64. Small, fast and
/// statistically solid; we deliberately avoid std::mt19937 so that streams
/// are stable across standard library implementations.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial with probability `p`.
  bool chance(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Picks a uniformly random element index of a non-empty container.
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return items[static_cast<std::size_t>(below(items.size()))];
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace confmask
