#include "src/util/prefix_allocator.hpp"

#include "src/util/fault_points.hpp"

namespace confmask {

PrefixPoolExhausted::PrefixPoolExhausted(Ipv4Prefix pool, int requested_length,
                                         std::size_t allocated)
    : std::runtime_error("prefix pool exhausted: " + pool.str() + " (/" +
                         std::to_string(requested_length) + " blocks, " +
                         std::to_string(allocated) + " already allocated)"),
      pool_(pool),
      requested_length_(requested_length),
      allocated_(allocated) {}

PrefixAllocator::PrefixAllocator(Ipv4Prefix link_pool, Ipv4Prefix host_pool)
    : link_pool_(link_pool), host_pool_(host_pool) {}

PrefixAllocator::PrefixAllocator()
    : PrefixAllocator(default_link_pool(), default_host_pool()) {}

Ipv4Prefix PrefixAllocator::default_link_pool() {
  return *Ipv4Prefix::parse("172.20.0.0/14");
}

Ipv4Prefix PrefixAllocator::default_host_pool() {
  return *Ipv4Prefix::parse("100.96.0.0/12");
}

void PrefixAllocator::reserve(const Ipv4Prefix& prefix) {
  used_.push_back(prefix);
}

bool PrefixAllocator::in_use(const Ipv4Prefix& prefix) const {
  for (const auto& existing : used_) {
    if (existing.overlaps(prefix)) return true;
  }
  return false;
}

Ipv4Prefix PrefixAllocator::allocate(Ipv4Prefix pool, int length,
                                     std::uint64_t& cursor) {
  if (faults::fire(faults::kPrefixPoolExhausted)) {
    throw PrefixPoolExhausted(pool, length, allocation_count_);
  }
  // 64-bit arithmetic throughout: `1u << (32 - length)` is UB for a /0
  // pool (shift by 32), and a /0 pool's capacity (2^32) does not fit in
  // 32 bits at all.
  const std::uint64_t step = std::uint64_t{1} << (32 - length);
  const std::uint64_t capacity = std::uint64_t{1} << (32 - pool.length());
  while (cursor < capacity) {
    const Ipv4Prefix candidate{
        Ipv4Address{pool.network().bits() + static_cast<std::uint32_t>(cursor)},
        length};
    cursor += step;
    if (!in_use(candidate)) {
      used_.push_back(candidate);
      ++allocation_count_;
      return candidate;
    }
  }
  throw PrefixPoolExhausted(pool, length, allocation_count_);
}

Ipv4Prefix PrefixAllocator::allocate_link() {
  return allocate(link_pool_, 31, link_cursor_);
}

Ipv4Prefix PrefixAllocator::allocate_host_lan() {
  return allocate(host_pool_, 24, host_cursor_);
}

}  // namespace confmask
