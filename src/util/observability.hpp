// Generic observability primitives: thread-safe counters and histograms, a
// monotonic clock, JSON string escaping, and a serialized NDJSON line sink.
//
// These are the substrate under src/core/pipeline_trace.hpp (the
// pipeline-aware span/metrics layer). Design constraints, in order:
//  * Determinism: nothing here draws randomness or reads wall-clock time.
//    The only clock is monotonic_ns() (std::chrono::steady_clock), and its
//    values are used for durations only — never as data the pipeline
//    branches on, so instrumented runs stay bit-identical to bare runs.
//  * Thread-safety without perturbation: Counter/Histogram writes are
//    relaxed atomics, safe from ThreadPool workers; reads are meant for
//    merge points (after parallel_for returns), where no writer races.
//  * No dependencies: plain C++ standard library, hand-rolled JSON (the
//    repository convention — see examples/confmask_cli.cpp diagnostics).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

namespace confmask::obs {

/// Monotonic nanoseconds since an arbitrary epoch (steady_clock). The only
/// time source the observability layer uses: differences are meaningful,
/// absolute values are not, and wall-clock never leaks into results.
[[nodiscard]] std::uint64_t monotonic_ns();

/// Escapes `text` for embedding inside a JSON string literal.
[[nodiscard]] std::string json_escape(std::string_view text);

/// A monotonically increasing event/occurrence counter. Writes are relaxed
/// atomic adds (safe from pool workers); value() is exact once writers have
/// reached a merge point.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A log2-bucketed histogram of unsigned values (dirty-set sizes, filters
/// per iteration, tasks per batch). Bucket i counts values of bit width i:
/// bucket 0 holds exactly the value 0, bucket i (i >= 1) holds values in
/// [2^(i-1), 2^i). record() is wait-free relaxed atomics; snapshot() is for
/// merge points.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;  // bit widths 0..64

  void record(std::uint64_t value);

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;  ///< 0 when count == 0
    std::uint64_t max = 0;
    std::array<std::uint64_t, kBuckets> buckets{};
  };
  [[nodiscard]] Snapshot snapshot() const;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Writes newline-delimited JSON: one complete object per line, lines
/// serialized under a mutex so concurrent emitters never interleave bytes.
/// Does not own the stream; the caller keeps it alive and flushes/closes.
///
/// write_line is virtual so transports can interpose: confmaskd's event
/// broadcast sink (src/service/daemon.cpp) subclasses this to fan trace
/// lines out to `subscribe`d connections while still teeing them to the
/// operator's --trace stream. The stream-less protected constructor exists
/// for exactly those subclasses; the base write_line is then a no-op they
/// may or may not chain to.
class NdjsonSink {
 public:
  explicit NdjsonSink(std::ostream& out) : out_(&out) {}
  virtual ~NdjsonSink() = default;

  NdjsonSink(const NdjsonSink&) = delete;
  NdjsonSink& operator=(const NdjsonSink&) = delete;

  /// Writes `json_object` (a complete `{...}` object, no trailing newline)
  /// as one NDJSON line.
  virtual void write_line(std::string_view json_object);

 protected:
  NdjsonSink() = default;  ///< subclass hook: no underlying stream

 private:
  std::mutex mutex_;
  std::ostream* out_ = nullptr;
};

}  // namespace confmask::obs
