#include "src/util/rng.hpp"

#include <bit>

namespace confmask {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t value = next();
    if (value >= threshold) return value % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) { return uniform() < p; }

}  // namespace confmask
