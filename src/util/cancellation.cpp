#include "src/util/cancellation.hpp"

namespace confmask {

namespace {

thread_local const CancelToken* t_current_token = nullptr;

std::string cancelled_message(CancelToken::Reason reason) {
  switch (reason) {
    case CancelToken::Reason::kDeadline:
      return "job deadline exceeded";
    case CancelToken::Reason::kCancelled:
      return "job cancelled by request";
    case CancelToken::Reason::kNone:
      break;
  }
  return "operation cancelled";
}

}  // namespace

const char* to_string(CancelToken::Reason reason) {
  switch (reason) {
    case CancelToken::Reason::kNone: return "none";
    case CancelToken::Reason::kCancelled: return "cancelled";
    case CancelToken::Reason::kDeadline: return "deadline";
  }
  return "unknown";
}

OperationCancelled::OperationCancelled(CancelToken::Reason reason)
    : std::runtime_error(cancelled_message(reason)), reason_(reason) {}

CancelScope::CancelScope(const CancelToken* token) noexcept
    : previous_(t_current_token) {
  t_current_token = token;
}

CancelScope::~CancelScope() { t_current_token = previous_; }

const CancelToken* CancelScope::current() noexcept { return t_current_token; }

void poll_cancellation() {
  const CancelToken* token = t_current_token;
  if (token == nullptr) return;
  const CancelToken::Reason reason = token->fired();
  if (reason != CancelToken::Reason::kNone) throw OperationCancelled(reason);
}

}  // namespace confmask
