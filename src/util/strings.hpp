// Small string helpers shared by the configuration parser/emitter.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace confmask {

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// Splits on runs of spaces/tabs, dropping empty tokens.
std::vector<std::string_view> split_ws(std::string_view text);

/// Splits on a single separator character, keeping empty fields.
std::vector<std::string_view> split(std::string_view text, char sep);

/// Joins pieces with a separator.
std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Counts non-empty, non-comment ("!" separator) configuration lines; this
/// is the line count the paper's U_C metric is computed over.
std::size_t count_config_lines(std::string_view text);

}  // namespace confmask
