// Allocation of fresh IPv4 prefixes that do not collide with a network's
// existing address space.
//
// ConfMask requires every fake link and fake host to live in a prefix "not
// included by any network that appeared in the original network
// configurations" (paper §5.3), so that added filters cannot interact with
// real routes. The allocator records all used prefixes and hands out
// non-overlapping blocks from configurable pools.
#pragma once

#include <vector>

#include "src/util/ipv4.hpp"

namespace confmask {

class PrefixAllocator {
 public:
  /// `link_pool` supplies /31 point-to-point blocks for fake links and
  /// `host_pool` supplies /24 LANs for fake hosts. Defaults are chosen from
  /// ranges rarely used by the generated evaluation networks; collisions
  /// with used prefixes are skipped, not errors.
  PrefixAllocator(Ipv4Prefix link_pool, Ipv4Prefix host_pool);
  PrefixAllocator();

  /// Marks a prefix as occupied by the original network.
  void reserve(const Ipv4Prefix& prefix);

  /// Returns true if `prefix` overlaps anything reserved or allocated.
  [[nodiscard]] bool in_use(const Ipv4Prefix& prefix) const;

  /// Allocates a fresh /31 for a fake point-to-point link.
  Ipv4Prefix allocate_link();

  /// Allocates a fresh /24 for a fake host LAN.
  Ipv4Prefix allocate_host_lan();

 private:
  Ipv4Prefix allocate(Ipv4Prefix pool, int length, std::uint32_t& cursor);

  Ipv4Prefix link_pool_;
  Ipv4Prefix host_pool_;
  std::uint32_t link_cursor_ = 0;
  std::uint32_t host_cursor_ = 0;
  std::vector<Ipv4Prefix> used_;
};

}  // namespace confmask
