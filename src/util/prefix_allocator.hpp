// Allocation of fresh IPv4 prefixes that do not collide with a network's
// existing address space.
//
// ConfMask requires every fake link and fake host to live in a prefix "not
// included by any network that appeared in the original network
// configurations" (paper §5.3), so that added filters cannot interact with
// real routes. The allocator records all used prefixes and hands out
// non-overlapping blocks from configurable pools.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/util/ipv4.hpp"

namespace confmask {

/// Thrown when a pool has no block left of the requested length. Carries
/// enough context (which pool, what was requested, how much was handed out)
/// for the guarded pipeline runner to widen the pool and retry instead of
/// aborting the run. Derives from std::runtime_error for backward
/// compatibility with pre-taxonomy catch sites.
class PrefixPoolExhausted : public std::runtime_error {
 public:
  PrefixPoolExhausted(Ipv4Prefix pool, int requested_length,
                      std::size_t allocated);

  [[nodiscard]] const Ipv4Prefix& pool() const { return pool_; }
  [[nodiscard]] int requested_length() const { return requested_length_; }
  /// Prefixes successfully handed out from this allocator before failure.
  [[nodiscard]] std::size_t allocated() const { return allocated_; }

 private:
  Ipv4Prefix pool_;
  int requested_length_;
  std::size_t allocated_;
};

class PrefixAllocator {
 public:
  /// `link_pool` supplies /31 point-to-point blocks for fake links and
  /// `host_pool` supplies /24 LANs for fake hosts. Defaults are chosen from
  /// ranges rarely used by the generated evaluation networks; collisions
  /// with used prefixes are skipped, not errors.
  PrefixAllocator(Ipv4Prefix link_pool, Ipv4Prefix host_pool);
  PrefixAllocator();

  /// The pools a default-constructed allocator draws from (the fallback
  /// ladder widens these on exhaustion).
  [[nodiscard]] static Ipv4Prefix default_link_pool();
  [[nodiscard]] static Ipv4Prefix default_host_pool();

  [[nodiscard]] const Ipv4Prefix& link_pool() const { return link_pool_; }
  [[nodiscard]] const Ipv4Prefix& host_pool() const { return host_pool_; }

  /// Marks a prefix as occupied by the original network.
  void reserve(const Ipv4Prefix& prefix);

  /// Returns true if `prefix` overlaps anything reserved or allocated.
  [[nodiscard]] bool in_use(const Ipv4Prefix& prefix) const;

  /// Allocates a fresh /31 for a fake point-to-point link.
  /// Throws PrefixPoolExhausted when the link pool is spent.
  Ipv4Prefix allocate_link();

  /// Allocates a fresh /24 for a fake host LAN.
  /// Throws PrefixPoolExhausted when the host pool is spent.
  Ipv4Prefix allocate_host_lan();

 private:
  Ipv4Prefix allocate(Ipv4Prefix pool, int length, std::uint64_t& cursor);

  Ipv4Prefix link_pool_;
  Ipv4Prefix host_pool_;
  // 64-bit: a /0 pool holds 2^32 addresses, one past std::uint32_t's range.
  std::uint64_t link_cursor_ = 0;
  std::uint64_t host_cursor_ = 0;
  std::size_t allocation_count_ = 0;
  std::vector<Ipv4Prefix> used_;
};

}  // namespace confmask
