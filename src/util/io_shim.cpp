#include "src/util/io_shim.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/util/fault_points.hpp"

namespace confmask::io {

namespace {

void fill_error(std::string* error, const char* step) {
  if (error != nullptr) {
    *error = std::string(step) + ": " + std::strerror(errno);
  }
}

/// Close preserving the errno of the failure being reported.
void close_keep_errno(int fd) {
  const int saved = errno;
  ::close(fd);
  errno = saved;
}

}  // namespace

bool write_all(int fd, const void* data, std::size_t size) {
  const char* bytes = static_cast<const char*>(data);
  std::size_t sent = 0;
  // Torn-write fault: deliver half the payload, then hard-fail. Armed as
  // ONE fault that spans two writes, so a single arm(kFaultShortWrite, 1)
  // produces exactly one torn write.
  bool torn = faults::fire(kFaultShortWrite);
  while (sent < size) {
    ssize_t n;
    if (faults::fire(kFaultEintr)) {
      errno = EINTR;
      n = -1;
    } else if (faults::fire(kFaultEnospc)) {
      errno = ENOSPC;
      n = -1;
    } else if (torn) {
      const std::size_t half = (size - sent) / 2;
      if (half == 0) {
        errno = ENOSPC;
        n = -1;
      } else {
        n = ::write(fd, bytes + sent, half);
        if (n >= 0) {
          sent += static_cast<std::size_t>(n);
          errno = ENOSPC;
          n = -1;
        }
      }
      torn = false;  // the follow-up failure below, not another tear
    } else {
      n = ::write(fd, bytes + sent, size - sent);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) {
      // write() returning 0 for a nonzero count is a pathological device;
      // treat as no-space rather than spinning.
      errno = ENOSPC;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

ssize_t write_some(int fd, const void* data, std::size_t size) {
  for (;;) {
    if (faults::fire(kFaultEintr)) {
      errno = EINTR;
      continue;
    }
    if (faults::fire(kFaultEnospc)) {
      errno = ENOSPC;
      return -1;
    }
    const std::size_t want =
        faults::fire(kFaultShortWrite) && size > 1 ? size / 2 : size;
    const ssize_t n = ::write(fd, data, want);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

ssize_t read_some(int fd, void* buf, std::size_t size) {
  for (;;) {
    if (faults::fire(kFaultEintr)) {
      errno = EINTR;
      continue;  // a real caller would loop; the shim proves it by looping
    }
    const std::size_t want =
        faults::fire(kFaultShortRead) && size > 1 ? 1 : size;
    const ssize_t n = ::read(fd, buf, want);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

bool fsync_fd(int fd) {
  if (faults::fire(kFaultFsyncFail)) {
    errno = EIO;
    return false;
  }
  while (::fsync(fd) != 0) {
    if (errno != EINTR) return false;
  }
  return true;
}

bool write_file_durable(const std::filesystem::path& path,
                        std::string_view contents, std::string* error) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    fill_error(error, "open");
    return false;
  }
  if (!write_all(fd, contents.data(), contents.size())) {
    fill_error(error, "write");
    close_keep_errno(fd);
    return false;
  }
  if (!fsync_fd(fd)) {
    fill_error(error, "fsync");
    close_keep_errno(fd);
    return false;
  }
  if (::close(fd) != 0) {
    fill_error(error, "close");
    return false;
  }
  return true;
}

bool fsync_dir(const std::filesystem::path& dir, std::string* error) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    fill_error(error, "open dir");
    return false;
  }
  if (!fsync_fd(fd)) {
    fill_error(error, "fsync dir");
    close_keep_errno(fd);
    return false;
  }
  ::close(fd);
  return true;
}

std::optional<std::string> read_file(const std::filesystem::path& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return std::nullopt;
  std::string out;
  char chunk[1 << 16];
  for (;;) {
    const ssize_t n = read_some(fd, chunk, sizeof chunk);
    if (n < 0) {
      close_keep_errno(fd);
      return std::nullopt;
    }
    if (n == 0) break;
    out.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

}  // namespace confmask::io
