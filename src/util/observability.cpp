#include "src/util/observability.hpp"

#include <bit>
#include <chrono>
#include <cstdio>

namespace confmask::obs {

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Histogram::record(std::uint64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  buckets_[static_cast<std::size_t>(std::bit_width(value))].fetch_add(
      1, std::memory_order_relaxed);
  // min/max via CAS loops — contention is negligible at phase granularity.
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = snap.count == 0 ? 0 : min_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

void NdjsonSink::write_line(std::string_view json_object) {
  if (out_ == nullptr) return;  // stream-less base of a broadcast subclass
  const std::lock_guard<std::mutex> lock(mutex_);
  *out_ << json_object << '\n';
}

}  // namespace confmask::obs
