#include "src/util/build_info.hpp"

namespace confmask {

const char* version() {
#ifdef CONFMASK_VERSION
  return CONFMASK_VERSION;
#else
  return "0.0.0-unversioned";
#endif
}

std::string build_stamp() {
  // __VERSION__ identifies the compiler release (e.g. "13.2.0" on GCC,
  // "Clang 17.0.1 ..." on Clang); pipeline codegen differences track it.
#ifdef __VERSION__
  const char* toolchain = __VERSION__;
#else
  const char* toolchain = "unknown-toolchain";
#endif
  return std::string("confmask/") + version() + "/" + toolchain;
}

}  // namespace confmask
