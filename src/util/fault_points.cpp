#include "src/util/fault_points.hpp"

#if defined(CONFMASK_FAULT_INJECTION)

#include <atomic>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>

namespace confmask::faults {

namespace {

std::mutex g_mutex;
std::map<std::string, int, std::less<>> g_armed;
// Fast path: fire() is on hot allocator/solver paths, so an un-armed
// registry must cost no more than one atomic load.
std::atomic<bool> g_any_armed{false};
// Plain bool by design: every read and write happens under g_mutex (the
// lazy check in fire() takes the lock before calling load_env_locked).
bool g_env_loaded = false;

/// Parses CONFMASK_FAULTS="point=count,point=count" once. A malformed pair
/// (no '=', empty name, non-numeric or trailing-junk count) is reported on
/// stderr and skipped — a misspelled fault spec silently dropped would make
/// a "the fault never fired" test pass vacuously. An explicit count <= 0 is
/// a valid spelling of "disarmed" and stays silent.
void load_env_locked() {
  if (g_env_loaded) return;
  g_env_loaded = true;
  const char* spec = std::getenv("CONFMASK_FAULTS");
  if (spec == nullptr) return;
  std::string_view rest(spec);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view pair = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    int count = 0;
    const char* count_begin = pair.data() + (eq + 1);
    const char* count_end = pair.data() + pair.size();
    const auto parsed =
        eq == std::string_view::npos || eq == 0
            ? std::from_chars_result{count_begin, std::errc::invalid_argument}
            : std::from_chars(count_begin, count_end, count);
    if (parsed.ec != std::errc{} || parsed.ptr != count_end) {
      std::fprintf(stderr,
                   "CONFMASK_FAULTS: ignoring malformed pair '%.*s'\n",
                   static_cast<int>(pair.size()), pair.data());
      continue;
    }
    if (count > 0) {
      g_armed[std::string(pair.substr(0, eq))] = count;
      g_any_armed.store(true, std::memory_order_relaxed);
    }
  }
}

}  // namespace

void arm(std::string_view point, int count) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  load_env_locked();
  if (count <= 0) {
    g_armed.erase(std::string(point));
  } else {
    g_armed[std::string(point)] = count;
  }
  g_any_armed.store(!g_armed.empty(), std::memory_order_relaxed);
}

void disarm_all() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_env_loaded = true;  // an explicit reset also discards env armings
  g_armed.clear();
  g_any_armed.store(false, std::memory_order_relaxed);
}

void reload_env_for_testing() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_armed.clear();
  g_any_armed.store(false, std::memory_order_relaxed);
  g_env_loaded = false;
  load_env_locked();
}

bool fire(std::string_view point) {
  if (!g_any_armed.load(std::memory_order_relaxed)) {
    // Environment armings must be visible before the first query even if
    // nobody called arm(); take the slow path once per process.
    static const bool env_checked = [] {
      const std::lock_guard<std::mutex> lock(g_mutex);
      load_env_locked();
      return true;
    }();
    (void)env_checked;
    if (!g_any_armed.load(std::memory_order_relaxed)) return false;
  }
  const std::lock_guard<std::mutex> lock(g_mutex);
  const auto it = g_armed.find(point);
  if (it == g_armed.end() || it->second <= 0) return false;
  if (--it->second == 0) g_armed.erase(it);
  g_any_armed.store(!g_armed.empty(), std::memory_order_relaxed);
  return true;
}

int remaining(std::string_view point) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  load_env_locked();
  const auto it = g_armed.find(point);
  return it == g_armed.end() ? 0 : it->second;
}

}  // namespace confmask::faults

#endif  // CONFMASK_FAULT_INJECTION
