#include "src/util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>

namespace confmask {

namespace {

// True while the current thread is executing a parallel_for body; nested
// parallel_for calls then run inline instead of deadlocking on the pool.
thread_local bool t_inside_pool_body = false;

std::mutex g_shared_mutex;
std::unique_ptr<ThreadPool> g_shared_pool;

}  // namespace

unsigned ThreadPool::default_workers() {
  if (const char* env = std::getenv("CONFMASK_JOBS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<unsigned>(std::min(parsed, 256L));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool& ThreadPool::shared() {
  const std::lock_guard<std::mutex> lock(g_shared_mutex);
  if (!g_shared_pool) g_shared_pool = std::make_unique<ThreadPool>();
  return *g_shared_pool;
}

void ThreadPool::configure(unsigned workers) {
  const std::lock_guard<std::mutex> lock(g_shared_mutex);
  g_shared_pool = std::make_unique<ThreadPool>(workers);
}

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) workers = default_workers();
  threads_.reserve(workers - 1);
  for (unsigned i = 0; i + 1 < workers; ++i) {
    threads_.emplace_back([this](std::stop_token stop) { worker_loop(stop); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto& thread : threads_) thread.request_stop();
  }
  cv_start_.notify_all();
  // Deterministic join order: creation order, explicitly (jthread's
  // implicit joins would run in reverse member order).
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::drain(const std::function<void(std::size_t)>& body,
                       std::size_t n) {
  t_inside_pool_body = true;
  for (;;) {
    const std::size_t index = next_.fetch_add(1, std::memory_order_relaxed);
    if (index >= n) break;
    try {
      body(index);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
  }
  t_inside_pool_body = false;
}

void ThreadPool::worker_loop(std::stop_token stop) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_start_.wait(lock, stop,
                     [&] { return generation_ != seen_generation; });
      if (stop.stop_requested() && generation_ == seen_generation) return;
      seen_generation = generation_;
      body = body_;
      n = n_;
    }
    drain(*body, n);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--active_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  // Serial fast path: a single-worker pool, a single-element batch, or a
  // nested call from inside a body. Identical results by construction.
  if (threads_.empty() || n == 1 || t_inside_pool_body) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    body_ = &body;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    active_ = threads_.size();
    ++generation_;
  }
  cv_start_.notify_all();
  drain(body, n);  // the caller is a worker too
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [&] { return active_ == 0; });
    body_ = nullptr;
    error = error_;
    error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace confmask
