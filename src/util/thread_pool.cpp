#include "src/util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <stdexcept>

#include "src/util/observability.hpp"

namespace confmask {

namespace {

// True while the current thread is executing a parallel_for body; nested
// parallel_for calls then run inline instead of deadlocking on the pool.
thread_local bool t_inside_pool_body = false;

std::mutex g_shared_mutex;
std::unique_ptr<ThreadPool> g_shared_pool;

std::atomic<bool> g_idle_tracking{false};

}  // namespace

void ThreadPool::set_idle_tracking(bool enabled) {
  g_idle_tracking.store(enabled, std::memory_order_relaxed);
}

bool ThreadPool::idle_tracking() {
  return g_idle_tracking.load(std::memory_order_relaxed);
}

unsigned ThreadPool::default_workers() {
  if (const char* env = std::getenv("CONFMASK_JOBS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<unsigned>(std::min(parsed, 256L));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool& ThreadPool::shared() {
  const std::lock_guard<std::mutex> lock(g_shared_mutex);
  if (!g_shared_pool) g_shared_pool = std::make_unique<ThreadPool>();
  return *g_shared_pool;
}

void ThreadPool::configure(unsigned workers) {
  const std::lock_guard<std::mutex> lock(g_shared_mutex);
  if (g_shared_pool && g_shared_pool->in_flight() != 0) {
    throw std::logic_error(
        "ThreadPool::configure called with a parallel_for in flight on the "
        "shared pool; configure is startup/test-setup only");
  }
  g_shared_pool = std::make_unique<ThreadPool>(workers);
}

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) workers = default_workers();
  worker_tasks_ = std::make_unique<std::atomic<std::uint64_t>[]>(workers);
  worker_idle_ns_ = std::make_unique<std::atomic<std::uint64_t>[]>(workers);
  for (unsigned i = 0; i < workers; ++i) {
    worker_tasks_[i].store(0, std::memory_order_relaxed);
    worker_idle_ns_[i].store(0, std::memory_order_relaxed);
  }
  threads_.reserve(workers - 1);
  for (unsigned i = 0; i + 1 < workers; ++i) {
    threads_.emplace_back(
        [this, i](std::stop_token stop) { worker_loop(i, stop); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto& thread : threads_) thread.request_stop();
  }
  cv_start_.notify_all();
  // Deterministic join order: creation order, explicitly (jthread's
  // implicit joins would run in reverse member order).
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::drain(const std::function<void(std::size_t)>& body,
                       std::size_t n, std::size_t worker) {
  t_inside_pool_body = true;
  std::uint64_t executed = 0;
  for (;;) {
    const std::size_t index = next_.fetch_add(1, std::memory_order_relaxed);
    if (index >= n) break;
    ++executed;
    try {
      body(index);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
  }
  t_inside_pool_body = false;
  if (executed != 0) {
    worker_tasks_[worker].fetch_add(executed, std::memory_order_relaxed);
  }
}

void ThreadPool::worker_loop(std::size_t worker, std::stop_token stop) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t n = 0;
    // Idle accounting is opt-in (observability): measure the whole wait,
    // spurious wakeups included — that time is idle either way.
    const std::uint64_t wait_start =
        idle_tracking() ? obs::monotonic_ns() : 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_start_.wait(lock, stop,
                     [&] { return generation_ != seen_generation; });
      if (stop.stop_requested() && generation_ == seen_generation) return;
      seen_generation = generation_;
      body = body_;
      n = n_;
    }
    if (wait_start != 0) {
      worker_idle_ns_[worker].fetch_add(obs::monotonic_ns() - wait_start,
                                        std::memory_order_relaxed);
    }
    drain(*body, n, worker);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--active_ == 0) cv_done_.notify_all();
    }
  }
}

ThreadPoolStats ThreadPool::stats() const {
  ThreadPoolStats out;
  out.batches = batches_.load(std::memory_order_relaxed);
  const std::size_t workers = threads_.size() + 1;
  out.workers.resize(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    out.workers[i].tasks = worker_tasks_[i].load(std::memory_order_relaxed);
    out.workers[i].idle_ns =
        worker_idle_ns_[i].load(std::memory_order_relaxed);
    out.tasks += out.workers[i].tasks;
  }
  return out;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  // In-flight accounting covers every externally submitted batch (pooled
  // AND serial paths): the configure() guard must fire for any concurrent
  // use, not just ones that happened to fan out. Nested inline calls are
  // already covered by their enclosing batch.
  struct InFlight {
    std::atomic<std::size_t>* count;
    explicit InFlight(std::atomic<std::size_t>* c) : count(c) {
      if (count) count->fetch_add(1, std::memory_order_acq_rel);
    }
    ~InFlight() {
      if (count) count->fetch_sub(1, std::memory_order_acq_rel);
    }
  } in_flight_guard(t_inside_pool_body ? nullptr : &in_flight_);
  batches_.fetch_add(1, std::memory_order_relaxed);
  // Serial fast path: a single-worker pool, a single-element batch, or a
  // nested call from inside a body. Identical results by construction.
  if (threads_.empty() || n == 1 || t_inside_pool_body) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    // Attribute serial/nested work to the calling-thread slot.
    worker_tasks_[threads_.size()].fetch_add(n, std::memory_order_relaxed);
    return;
  }
  // One batch owns the workers at a time; concurrent submitters queue here.
  const std::lock_guard<std::mutex> submit_lock(submit_mutex_);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    body_ = &body;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    active_ = threads_.size();
    ++generation_;
  }
  cv_start_.notify_all();
  drain(body, n, threads_.size());  // the caller is a worker too
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [&] { return active_ == 0; });
    body_ = nullptr;
    error = error_;
    error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace confmask
