#include "src/util/ipv4.hpp"

#include <array>
#include <charconv>
#include <stdexcept>

namespace confmask {

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  std::array<std::uint32_t, 4> octets{};
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    if (pos >= text.size()) return std::nullopt;
    std::uint32_t value = 0;
    const char* begin = text.data() + pos;
    const char* end = text.data() + text.size();
    auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr == begin || value > 255) return std::nullopt;
    // Router-config semantics: octets are plain decimals of at most three
    // digits, and "010" is not a spelling of 10 (some stacks read leading
    // zeros as octal — safest to reject outright).
    const auto digits = static_cast<std::size_t>(ptr - begin);
    if (digits > 3 || (digits > 1 && *begin == '0')) return std::nullopt;
    octets[static_cast<std::size_t>(i)] = value;
    pos = static_cast<std::size_t>(ptr - text.data());
    if (i < 3) {
      if (pos >= text.size() || text[pos] != '.') return std::nullopt;
      ++pos;
    }
  }
  if (pos != text.size()) return std::nullopt;
  return Ipv4Address{(octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) |
                     octets[3]};
}

std::string Ipv4Address::str() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    out += std::to_string((bits_ >> shift) & 0xFF);
    if (shift != 0) out += '.';
  }
  return out;
}

int Ipv4Address::classful_prefix_length() const {
  const std::uint32_t top = bits_ >> 24;
  if (top < 128) return 8;    // class A
  if (top < 192) return 16;   // class B
  if (top < 224) return 24;   // class C
  return 32;                  // class D/E: treat as host route
}

namespace {

/// True if `mask` has contiguous leading ones; sets `length` accordingly.
bool contiguous_mask_length(std::uint32_t mask, int& length) {
  length = std::popcount(mask);
  const std::uint32_t expected =
      length == 0 ? 0u : ~std::uint32_t{0} << (32 - length);
  return mask == expected;
}

}  // namespace

Ipv4Prefix::Ipv4Prefix(Ipv4Address addr, int length) : length_(length) {
  if (length < 0 || length > 32) {
    throw std::invalid_argument("prefix length out of range: " +
                                std::to_string(length));
  }
  const std::uint32_t mask =
      length == 0 ? 0u : ~std::uint32_t{0} << (32 - length);
  network_ = Ipv4Address{addr.bits() & mask};
}

std::optional<Ipv4Prefix> Ipv4Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4Address::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  int length = 0;
  const char* begin = text.data() + slash + 1;
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, length);
  if (ec != std::errc{} || ptr != end || length < 0 || length > 32) {
    return std::nullopt;
  }
  return Ipv4Prefix{*addr, length};
}

std::optional<Ipv4Prefix> Ipv4Prefix::from_mask(Ipv4Address addr,
                                                Ipv4Address mask) {
  int length = 0;
  if (!contiguous_mask_length(mask.bits(), length)) return std::nullopt;
  return Ipv4Prefix{addr, length};
}

std::optional<Ipv4Prefix> Ipv4Prefix::from_wildcard(Ipv4Address addr,
                                                    Ipv4Address wildcard) {
  return from_mask(addr, Ipv4Address{~wildcard.bits()});
}

std::uint32_t Ipv4Prefix::mask_bits() const {
  return length_ == 0 ? 0u : ~std::uint32_t{0} << (32 - length_);
}

bool Ipv4Prefix::contains(Ipv4Address addr) const {
  return (addr.bits() & mask_bits()) == network_.bits();
}

bool Ipv4Prefix::contains(const Ipv4Prefix& other) const {
  return other.length_ >= length_ && contains(other.network_);
}

bool Ipv4Prefix::overlaps(const Ipv4Prefix& other) const {
  return contains(other) || other.contains(*this);
}

Ipv4Address Ipv4Prefix::host(std::uint32_t index) const {
  // An index wider than the host-bit count would OR into a neighboring
  // prefix and silently alias another network's address space.
  if (length_ > 0 && (index >> (32 - length_)) != 0) {
    throw std::out_of_range("host index " + std::to_string(index) +
                            " out of range for " + str());
  }
  return Ipv4Address{network_.bits() | index};
}

std::string Ipv4Prefix::str() const {
  return network_.str() + "/" + std::to_string(length_);
}

}  // namespace confmask
