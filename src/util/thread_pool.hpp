// A small reusable worker pool for the simulation engine's embarrassingly
// parallel loops (per-source Dijkstra, per-destination FIB fill, per-flow
// data-plane walks, per-router reachability sweeps).
//
// Design constraints, in order:
//  * Determinism: parallel_for makes NO scheduling decision visible to the
//    caller — every index runs exactly once and all writes the bodies make
//    must target disjoint slots, so results are bit-identical to a serial
//    loop regardless of worker count or interleaving. The pool is a
//    throughput device, never a semantics device.
//  * Deterministic lifecycle: workers are std::jthread, created once and
//    joined in creation order by the destructor.
//  * Zero surprise under nesting: a parallel_for issued from inside a pool
//    body runs inline on the calling worker (no deadlock, no oversubscribe).
//  * Safe concurrent submitters: parallel_for may be called from multiple
//    threads at once (the serving layer runs several pipelines over the one
//    shared pool). Batches from distinct callers are serialized internally
//    — one batch owns the workers at a time, the others wait their turn —
//    so per-batch semantics (every index exactly once, first exception
//    rethrown to ITS submitter) are unchanged.
//
// Worker-count policy: an explicit count wins; otherwise the CONFMASK_JOBS
// environment variable; otherwise std::thread::hardware_concurrency(). The
// process-wide pool (`ThreadPool::shared()`) is what the simulator uses and
// is resized via `ThreadPool::configure()` (the CLI's --jobs flag).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace confmask {

/// Cumulative utilization counters of one pool since its construction.
/// `workers` has one entry per worker; the LAST entry is the calling
/// thread (which participates in every parallel_for). Task counts are
/// always maintained (one relaxed atomic add per worker per batch);
/// idle_ns is only accumulated while ThreadPool::set_idle_tracking(true)
/// is in effect (the observability layer enables it for traced runs) so
/// untraced runs never touch the clock.
struct ThreadPoolStats {
  struct Worker {
    std::uint64_t tasks = 0;    ///< parallel_for indices this worker ran
    std::uint64_t idle_ns = 0;  ///< time spent waiting for a batch
  };
  std::uint64_t batches = 0;  ///< parallel_for calls (including serial path)
  std::uint64_t tasks = 0;    ///< total indices executed
  std::vector<Worker> workers;
};

class ThreadPool {
 public:
  /// Spawns `workers - 1` threads (the caller participates as the last
  /// worker in parallel_for). `workers == 0` means default_workers().
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers including the calling thread (always >= 1).
  [[nodiscard]] unsigned workers() const {
    return static_cast<unsigned>(threads_.size()) + 1;
  }

  /// Runs body(i) exactly once for every i in [0, n), distributing indices
  /// over the workers, and blocks until all are done. The first exception
  /// thrown by a body is rethrown here after the batch drains. Bodies must
  /// write only to disjoint slots (see file comment). Nested calls from
  /// inside a body run inline on the calling thread.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// CONFMASK_JOBS env var if set and >= 1, else hardware concurrency.
  [[nodiscard]] static unsigned default_workers();

  /// The process-wide pool the simulation engine uses.
  [[nodiscard]] static ThreadPool& shared();

  /// Replaces the shared pool with one of `workers` workers (0 = default).
  /// Intended for startup (--jobs) and test setup only: replacing the pool
  /// destroys the old one, so a parallel_for still in flight on it would
  /// race with destruction. That misuse used to be silent; it now throws
  /// std::logic_error when the shared pool reports in-flight work. The
  /// guard is necessarily best-effort — a caller that fetched shared() but
  /// has not yet entered parallel_for is invisible — so the contract stays
  /// "startup and test setup"; the guard just makes violations loud.
  static void configure(unsigned workers);

  /// parallel_for calls currently executing on this pool (external callers
  /// only; nested inline calls don't count). Exact when no caller is
  /// mid-submission.
  [[nodiscard]] std::size_t in_flight() const {
    return in_flight_.load(std::memory_order_acquire);
  }

  /// Snapshot of the cumulative utilization counters. Exact once all
  /// batches have drained (parallel_for returned).
  [[nodiscard]] ThreadPoolStats stats() const;

  /// Process-global switch for per-worker idle-time accounting (two
  /// steady_clock reads per worker per batch). Off by default so untraced
  /// runs pay nothing; PipelineTrace flips it on for its lifetime.
  static void set_idle_tracking(bool enabled);
  [[nodiscard]] static bool idle_tracking();

 private:
  void worker_loop(std::size_t worker, std::stop_token stop);
  void drain(const std::function<void(std::size_t)>& body, std::size_t n,
             std::size_t worker);

  // Serializes whole batches from distinct submitter threads: held by a
  // submitter for its batch's full setup → drain → wait lifetime. Workers
  // never take it, so holding it across the wait cannot deadlock.
  std::mutex submit_mutex_;
  std::atomic<std::size_t> in_flight_{0};
  std::mutex mutex_;
  std::condition_variable_any cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t n_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t active_ = 0;       // workers still draining the current batch
  std::uint64_t generation_ = 0;  // bumped per batch to wake the workers
  std::exception_ptr error_;
  // Utilization counters, one slot per worker (last = calling thread).
  // Plain arrays of atomics: each worker writes only its own slot.
  std::unique_ptr<std::atomic<std::uint64_t>[]> worker_tasks_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> worker_idle_ns_;
  std::atomic<std::uint64_t> batches_{0};
  std::vector<std::jthread> threads_;
};

}  // namespace confmask
