// FNV-1a/64: the content-addressing hash of the serving layer.
//
// Cache keys (src/service/cache_key.hpp) are FNV-1a/64 digests of a
// canonical byte string (canonical ConfigSet text + canonical parameter
// encoding). FNV-1a was chosen over stronger hashes deliberately:
//  * it is trivially portable — no dependency, no endianness trap, and the
//    digest of a given byte string is identical on every platform, which is
//    what makes cache keys stable across machines sharing a cache dir;
//  * the inputs are trusted (the operator's own configs), so collision
//    *attacks* are out of scope; accidental 64-bit collisions are guarded
//    against by a second, independently-seeded digest stored in the cache
//    entry metadata (see ArtifactCache).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace confmask {

/// Streaming FNV-1a/64 hasher. Feed bytes with update(); read the running
/// digest with value() at any point. Two hashers fed the same byte
/// sequence in any chunking produce the same digest.
class Fnv1a64 {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xCBF29CE484222325ULL;
  static constexpr std::uint64_t kPrime = 0x00000100000001B3ULL;

  /// `basis` overrides the offset basis — used to derive the independent
  /// secondary digest (any odd constant different from kOffsetBasis works).
  explicit Fnv1a64(std::uint64_t basis = kOffsetBasis) : state_(basis) {}

  void update(std::string_view bytes) {
    std::uint64_t h = state_;
    for (const char c : bytes) {
      h ^= static_cast<unsigned char>(c);
      h *= kPrime;
    }
    state_ = h;
  }

  /// Hashes the 8 bytes of `v` in little-endian order (explicitly, so the
  /// digest does not depend on host endianness).
  void update_u64(std::uint64_t v) {
    char bytes[8];
    for (int i = 0; i < 8; ++i) {
      bytes[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    }
    update(std::string_view(bytes, 8));
  }

  [[nodiscard]] std::uint64_t value() const { return state_; }

 private:
  std::uint64_t state_;
};

/// One-shot digest of a byte string.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes);

/// Lower-case 16-hex-digit rendering of a 64-bit digest (fixed width, so
/// digests sort lexicographically like they sort numerically).
[[nodiscard]] std::string hex64(std::uint64_t value);

/// Inverse of hex64; nullopt on malformed input (wrong length or non-hex
/// characters).
[[nodiscard]] std::optional<std::uint64_t> parse_hex64(std::string_view text);

}  // namespace confmask
