// IPv4 address and prefix arithmetic.
//
// These are the value types the whole repository is built on: configuration
// files store interface addresses and prefix-list entries, the routing
// simulator keys its RIB/FIB on prefixes, and the anonymizer allocates fresh
// prefixes for fake links and fake hosts. Everything here is a plain value
// type with no invariants beyond range checks done at construction.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace confmask {

/// A single IPv4 address stored in host byte order.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t bits) : bits_(bits) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : bits_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parses dotted-quad notation ("10.0.0.1"). Returns nullopt on any
  /// malformed input (wrong number of octets, octet > 255, junk
  /// characters, leading-zero or >3-digit octets — "010.0.0.1" is
  /// rejected to match router-config semantics).
  static std::optional<Ipv4Address> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t bits() const { return bits_; }
  [[nodiscard]] std::string str() const;

  /// The classful network class of this address (A => /8, B => /16,
  /// C => /24, other => /32). Used by RIP `network` statements.
  [[nodiscard]] int classful_prefix_length() const;

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

 private:
  std::uint32_t bits_ = 0;
};

/// An IPv4 prefix (network address + prefix length). The network address is
/// always stored canonicalized (host bits zeroed).
class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;
  Ipv4Prefix(Ipv4Address addr, int length);

  /// Parses "10.1.2.0/24". Returns nullopt on malformed input.
  static std::optional<Ipv4Prefix> parse(std::string_view text);

  /// Builds a prefix from an address and a dotted-quad subnet mask
  /// ("255.255.255.0"). Returns nullopt if the mask is non-contiguous.
  static std::optional<Ipv4Prefix> from_mask(Ipv4Address addr,
                                             Ipv4Address mask);

  /// Builds a prefix from an address and a Cisco wildcard mask
  /// ("0.0.0.255" == /24). Returns nullopt if the wildcard is
  /// non-contiguous.
  static std::optional<Ipv4Prefix> from_wildcard(Ipv4Address addr,
                                                 Ipv4Address wildcard);

  [[nodiscard]] Ipv4Address network() const { return network_; }
  [[nodiscard]] int length() const { return length_; }
  [[nodiscard]] std::uint32_t mask_bits() const;
  [[nodiscard]] Ipv4Address mask() const { return Ipv4Address{mask_bits()}; }
  [[nodiscard]] Ipv4Address wildcard() const {
    return Ipv4Address{~mask_bits()};
  }

  [[nodiscard]] bool contains(Ipv4Address addr) const;
  [[nodiscard]] bool contains(const Ipv4Prefix& other) const;
  [[nodiscard]] bool overlaps(const Ipv4Prefix& other) const;

  /// The i-th host address inside this prefix (0 = network address).
  /// Throws std::out_of_range when `index` does not fit in the host bits
  /// (it would otherwise wrap into a neighboring prefix).
  [[nodiscard]] Ipv4Address host(std::uint32_t index) const;

  [[nodiscard]] std::string str() const;

  friend auto operator<=>(const Ipv4Prefix&, const Ipv4Prefix&) = default;

 private:
  Ipv4Address network_;
  int length_ = 0;
};

}  // namespace confmask
