#include "src/util/strings.hpp"

namespace confmask {

std::string_view trim(std::string_view text) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && is_space(text[begin])) ++begin;
  while (end > begin && is_space(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

std::vector<std::string_view> split_ws(std::string_view text) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < text.size() && text[i] != ' ' && text[i] != '\t') ++i;
    if (i > start) tokens.push_back(text.substr(start, i - start));
  }
  return tokens;
}

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      fields.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out += sep;
    out += pieces[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::size_t count_config_lines(std::string_view text) {
  std::size_t count = 0;
  for (std::string_view line : split(text, '\n')) {
    const std::string_view body = trim(line);
    if (!body.empty() && body != "!") ++count;
  }
  return count;
}

}  // namespace confmask
