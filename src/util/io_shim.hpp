// Fault-injectable POSIX I/O: the single path through which the serving
// layer touches file descriptors.
//
// Durability claims ("the journal survives kill -9", "no partial cache
// entry is ever published") are only as good as the I/O code's handling of
// the ugly cases — EINTR, partial writes, ENOSPC mid-write, fsync failure,
// a peer closing a socket mid-line. Those cases are nearly impossible to
// produce on demand with real disks and sockets, so every wrapper here
// consults the fault-point registry (fault_points.hpp) FIRST and can be
// armed to simulate exactly one of them:
//
//   confmask.io.eintr        next syscall returns EINTR once (proves the
//                            retry loops actually loop)
//   confmask.io.short_write  next write accepts only half the bytes, then
//                            the following write fails ENOSPC — a torn
//                            write: some bytes landed, the rest never will
//   confmask.io.enospc       next write fails ENOSPC before any byte lands
//   confmask.io.short_read   next read returns only 1 byte (exercises
//                            re-assembly loops)
//   confmask.io.fsync_fail   next fsync fails EIO
//
// The wrappers themselves implement the correct behavior — loop on EINTR,
// resume partial writes, report errno faithfully — so production code that
// routes through them is hardened and testable at once. When fault
// injection is compiled out (CONFMASK_FAULT_INJECTION=OFF), fire() is a
// constexpr false and the checks vanish.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>

namespace confmask::io {

// Fault point names (see table above).
inline constexpr std::string_view kFaultEintr = "confmask.io.eintr";
inline constexpr std::string_view kFaultShortWrite = "confmask.io.short_write";
inline constexpr std::string_view kFaultEnospc = "confmask.io.enospc";
inline constexpr std::string_view kFaultShortRead = "confmask.io.short_read";
inline constexpr std::string_view kFaultFsyncFail = "confmask.io.fsync_fail";

/// write(2) until all `size` bytes of `data` landed, retrying EINTR and
/// resuming partial writes. False on any hard error (errno preserved) —
/// note some PREFIX of the bytes may already be on disk (a torn write);
/// callers relying on all-or-nothing must stage + rename, not trust this.
[[nodiscard]] bool write_all(int fd, const void* data, std::size_t size);

/// read(2) retrying EINTR. Returns the syscall result otherwise: 0 = EOF,
/// -1 = hard error (errno preserved), else bytes read (may be short —
/// callers loop).
[[nodiscard]] ssize_t read_some(int fd, void* buf, std::size_t size);

/// One write(2) attempt retrying EINTR (same fault points as write_all:
/// short_write delivers half, enospc fails before any byte). Returns bytes
/// written (may be short) or -1 on hard error with errno preserved —
/// including EAGAIN/EWOULDBLOCK, which NONBLOCKING callers (the daemon's
/// connection manager) treat as "buffer full, poll and resume", not as a
/// failure. Unlike write_all this never loops on partial progress, so it
/// cannot block the caller on a slow peer.
[[nodiscard]] ssize_t write_some(int fd, const void* data, std::size_t size);

/// fsync(2) retrying EINTR; false on hard failure (errno preserved).
[[nodiscard]] bool fsync_fd(int fd);

/// Writes `contents` to `path` (create/truncate) and fsyncs the file
/// before closing — the bytes are durable, not just buffered, when this
/// returns true. On failure fills *error (when provided) with the failing
/// step and strerror(errno); the file may be left partially written.
[[nodiscard]] bool write_file_durable(const std::filesystem::path& path,
                                      std::string_view contents,
                                      std::string* error = nullptr);

/// fsyncs a DIRECTORY, making previously-renamed/created entries in it
/// durable (rename(2) is only crash-safe once the parent dir is synced).
[[nodiscard]] bool fsync_dir(const std::filesystem::path& dir,
                             std::string* error = nullptr);

/// Whole-file read via the shim (nullopt on open/read failure).
[[nodiscard]] std::optional<std::string> read_file(
    const std::filesystem::path& path);

}  // namespace confmask::io
