// Build identity: version and a build stamp.
//
// The stamp exists for exactly one consumer-visible purpose: artifact-cache
// invalidation. A cache entry written by one build of the pipeline must not
// be served by a build whose pipeline could produce different bytes, so
// every entry records the stamp of the binary that wrote it and lookups
// miss (and purge) on mismatch. The stamp is deliberately derived from the
// version and toolchain — NOT from __DATE__/__TIME__ — so rebuilding the
// same source with the same compiler keeps the cache warm, while a version
// bump or compiler change invalidates it.
#pragma once

#include <string>

namespace confmask {

/// Semantic version of this source tree (CONFMASK_VERSION, set by CMake
/// from project(VERSION); "0.0.0-unversioned" in builds that bypass it).
[[nodiscard]] const char* version();

/// Cache-invalidation stamp: "confmask/<version>/<compiler tag>". Stable
/// across rebuilds of identical source+toolchain.
[[nodiscard]] std::string build_stamp();

}  // namespace confmask
