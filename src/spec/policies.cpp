#include "src/spec/policies.hpp"

#include <algorithm>

namespace confmask {

std::set<Policy> mine_policies(const DataPlane& dp) {
  std::set<Policy> policies;
  for (const auto& [flow, paths] : dp.flows) {
    if (paths.empty()) continue;
    policies.insert(Policy{Policy::Kind::kReachability, flow.first,
                           flow.second, "", 0});

    // Waypoints: interior routers present on every path of the flow.
    std::set<std::string> common(paths[0].begin() + 1, paths[0].end() - 1);
    for (std::size_t i = 1; i < paths.size() && !common.empty(); ++i) {
      const std::set<std::string> here(paths[i].begin() + 1,
                                       paths[i].end() - 1);
      std::set<std::string> kept;
      std::set_intersection(common.begin(), common.end(), here.begin(),
                            here.end(), std::inserter(kept, kept.begin()));
      common = std::move(kept);
    }
    for (const auto& router : common) {
      policies.insert(Policy{Policy::Kind::kWaypoint, flow.first,
                             flow.second, router, 0});
    }

    if (paths.size() >= 2) {
      policies.insert(Policy{Policy::Kind::kLoadBalance, flow.first,
                             flow.second, "",
                             static_cast<int>(paths.size())});
    }
  }
  return policies;
}

SpecComparison compare_policies(const std::set<Policy>& original,
                                const std::set<Policy>& anonymized,
                                const std::set<std::string>& real_hosts) {
  SpecComparison comparison;
  comparison.original_total = original.size();
  for (const auto& policy : original) {
    if (anonymized.count(policy) != 0) {
      ++comparison.kept;
    } else {
      ++comparison.missing;
    }
  }
  for (const auto& policy : anonymized) {
    if (original.count(policy) != 0) continue;
    ++comparison.introduced;
    if (real_hosts.count(policy.src) == 0 ||
        real_hosts.count(policy.dst) == 0) {
      ++comparison.introduced_fake;
    }
  }
  return comparison;
}

}  // namespace confmask
