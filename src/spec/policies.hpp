// Specification mining — the repository's stand-in for Config2Spec
// (Birkner et al., NSDI'20), which the paper uses in Fig 9 to compare how
// many network specifications survive anonymization.
//
// A specification is a set of policies mined from the data plane. We mine
// the three policy classes the paper's comparison uses:
//  * Reachability(src, dst)       — the flow has at least one path;
//  * Waypoint(src, dst, router)   — EVERY path of the flow crosses router;
//  * LoadBalance(src, dst, k)     — the flow is spread over k >= 2 paths.
#pragma once

#include <compare>
#include <cstddef>
#include <set>
#include <string>

#include "src/routing/dataplane.hpp"

namespace confmask {

struct Policy {
  enum class Kind { kReachability, kWaypoint, kLoadBalance };
  Kind kind = Kind::kReachability;
  std::string src;
  std::string dst;
  std::string waypoint;  ///< Waypoint policies only
  int paths = 0;         ///< LoadBalance policies only

  friend auto operator<=>(const Policy&, const Policy&) = default;
};

[[nodiscard]] std::set<Policy> mine_policies(const DataPlane& dp);

struct SpecComparison {
  std::size_t original_total = 0;
  std::size_t kept = 0;        ///< original policies still holding
  std::size_t missing = 0;     ///< original policies violated
  std::size_t introduced = 0;  ///< new policies not in the original spec
  std::size_t introduced_fake = 0;  ///< ... whose src or dst is a fake host

  /// Fig 9's "kept spec" bar.
  [[nodiscard]] double kept_fraction() const {
    return original_total == 0
               ? 1.0
               : static_cast<double>(kept) /
                     static_cast<double>(original_total);
  }
  /// Fig 9's above-1 bar: introduced specs relative to the original count.
  [[nodiscard]] double introduced_ratio() const {
    return original_total == 0
               ? 0.0
               : static_cast<double>(introduced) /
                     static_cast<double>(original_total);
  }
  /// Share of introduced specs explained by fake hosts/links (the paper
  /// reports 96.9% for ConfMask).
  [[nodiscard]] double introduced_fake_share() const {
    return introduced == 0 ? 0.0
                           : static_cast<double>(introduced_fake) /
                                 static_cast<double>(introduced);
  }
};

/// Compares mined specifications; `real_hosts` classifies introduced
/// policies as fake-host-related or genuine false positives.
[[nodiscard]] SpecComparison compare_policies(
    const std::set<Policy>& original, const std::set<Policy>& anonymized,
    const std::set<std::string>& real_hosts);

}  // namespace confmask
