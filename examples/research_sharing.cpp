// Research-sharing pipeline: anonymize an ISP-scale network for release,
// write the anonymized configuration files to disk, then re-ingest them
// exactly like a third-party researcher would — parse, simulate, mine
// specifications — and verify that (a) the research value survived and
// (b) the sensitive facts did not.
//
//   $ ./research_sharing [output-dir]
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "src/config/emit.hpp"
#include "src/config/parse.hpp"
#include "src/core/confmask.hpp"
#include "src/core/metrics.hpp"
#include "src/netgen/networks.hpp"
#include "src/routing/simulation.hpp"
#include "src/spec/policies.hpp"

int main(int argc, char** argv) {
  using namespace confmask;
  namespace fs = std::filesystem;
  const fs::path out_dir = argc > 1 ? argv[1] : "anonymized_configs";

  // The data holder's network: an ISP-style OSPF deployment.
  const ConfigSet original = make_bics();
  std::printf("data holder's network: %zu routers, %zu hosts\n",
              original.routers.size(), original.hosts.size());

  // Anonymize for publication.
  ConfMaskOptions options;
  options.k_r = 6;
  options.k_h = 2;
  options.seed = 0xBEEF;
  const auto result = run_confmask(original, options);
  std::printf("anonymized in %.2fs: +%zu fake links, +%zu fake hosts, "
              "U_C %.1f%%\n",
              result.stats.seconds,
              result.stats.fake_intra_links + result.stats.fake_inter_links,
              result.stats.fake_hosts,
              100.0 * config_utility(result.stats.original_lines,
                                     result.stats.anonymized_lines));
  if (!result.functionally_equivalent) {
    std::printf("functional equivalence verification FAILED — not sharing\n");
    return 1;
  }

  // Write the shareable artifact.
  fs::create_directories(out_dir);
  for (const auto& router : result.anonymized.routers) {
    std::ofstream(out_dir / (router.hostname + ".cfg")) << emit_router(router);
  }
  for (const auto& host : result.anonymized.hosts) {
    std::ofstream(out_dir / (host.hostname + ".cfg")) << emit_host(host);
  }
  std::printf("wrote %zu configuration files to %s\n",
              result.anonymized.routers.size() +
                  result.anonymized.hosts.size(),
              out_dir.string().c_str());

  // --- The researcher's side: ingest the published files. ---
  ConfigSet received;
  for (const auto& entry : fs::directory_iterator(out_dir)) {
    std::ifstream in(entry.path());
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    if (looks_like_host(text)) {
      received.hosts.push_back(parse_host(text));
    } else {
      received.routers.push_back(parse_router(text));
    }
  }
  const Simulation sim(received);
  const auto dp = sim.extract_data_plane();
  const auto policies = mine_policies(dp);
  std::printf("\nresearcher ingests the artifact: %zu devices, %zu flows, "
              "%zu mined policies\n",
              received.routers.size() + received.hosts.size(),
              dp.flows.size(), policies.size());

  // Research value: every policy of the original network still holds.
  const auto original_policies = mine_policies(result.original_dp);
  std::set<std::string> real_hosts;
  for (const auto& host : original.hosts) real_hosts.insert(host.hostname);
  const auto comparison =
      compare_policies(original_policies, policies, real_hosts);
  std::printf("original policies preserved: %.1f%% (%zu/%zu)\n",
              100.0 * comparison.kept_fraction(), comparison.kept,
              comparison.original_total);

  // Privacy: what the researcher can infer about the topology is
  // k-anonymous.
  std::printf("researcher-visible topology: every router degree shared by "
              ">= %d routers (k_R = %d requested)\n",
              topology_min_degree_class(received), options.k_r);
  const auto nr = route_anonymity_nr(dp);
  std::printf("researcher-visible routes: avg %.2f candidate paths per "
              "edge-router pair\n",
              nr.average);
  return 0;
}
