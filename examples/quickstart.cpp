// Quickstart: anonymize the paper's Figure 2 example network and inspect
// what ConfMask did.
//
//   $ ./quickstart
//
// Builds the four-router OSPF network (costs 1 on r1-r3 and r3-r2, so the
// only h1->h4 path is h1,r1,r3,r2,r4,h4), runs the full ConfMask pipeline,
// and prints: the fake links and hosts added, the preserved data plane,
// and one anonymized router configuration.
#include <cstdio>

#include "src/config/emit.hpp"
#include "src/core/confmask.hpp"
#include "src/core/metrics.hpp"
#include "src/netgen/networks.hpp"

int main() {
  using namespace confmask;

  // 1. The network to share: the paper's Fig 2 example.
  const ConfigSet original = make_figure2();
  std::printf("original network: %zu routers, %zu hosts, %zu config lines\n",
              original.routers.size(), original.hosts.size(),
              config_set_total_lines(original));

  // 2. Anonymize. k_r: every router degree shared by >= 4 routers;
  //    k_h: every host hidden among 2 candidates.
  ConfMaskOptions options;
  options.k_r = 4;
  options.k_h = 2;
  options.seed = 2024;
  const PipelineResult result = run_confmask(original, options);

  std::printf("\n--- what ConfMask did ---\n");
  std::printf("fake links added:       %zu\n",
              result.stats.fake_intra_links + result.stats.fake_inter_links);
  std::printf("fake hosts added:       %zu (%s...)\n",
              result.stats.fake_hosts,
              result.fake_hosts.empty() ? "-" : result.fake_hosts[0].c_str());
  std::printf("equivalence filters:    %d (in %d iterations)\n",
              result.stats.equivalence_filters,
              result.stats.equivalence_iterations);
  std::printf("anonymity filters:      %d (+%d rolled back)\n",
              result.stats.anonymity_filters,
              result.stats.anonymity_rollbacks);
  std::printf("lines injected:         %zu (U_C = %.1f%%)\n",
              result.stats.added_lines(),
              100.0 * config_utility(result.stats.original_lines,
                                     result.stats.anonymized_lines));

  // 3. The guarantee: every real host-to-host path is EXACTLY preserved.
  std::printf("\nfunctionally equivalent: %s\n",
              result.functionally_equivalent ? "yes" : "NO (bug!)");
  const auto it = result.anonymized_dp.flows.find({"h1", "h4"});
  if (it != result.anonymized_dp.flows.end()) {
    std::printf("h1 -> h4 in the anonymized network:");
    for (const auto& hop : it->second.front()) std::printf(" %s", hop.c_str());
    std::printf("\n");
  }

  // 4. Privacy achieved.
  std::printf("topology k-anonymity:   every degree shared by >= %d routers\n",
              topology_min_degree_class(result.anonymized));
  const auto nr = route_anonymity_nr(result.anonymized_dp);
  std::printf("route anonymity N_r:    avg %.2f over %zu edge-router pairs\n",
              nr.average, nr.pairs);

  // 5. What the shared artifact looks like.
  std::printf("\n--- anonymized configuration of r1 ---\n%s",
              emit_router(*result.anonymized.find_router("r1")).c_str());
  return 0;
}
