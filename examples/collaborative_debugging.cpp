// The §2.3 case study: collaborative debugging of a QoS misconfiguration.
//
// FatTree-04, users report high delay/loss from h_A (on e3-1) to h_B (on
// e1-0). Root cause: core router c2 marks traffic from agg3-1 as
// LOW-priority (should be high), and agg1-1's low-priority queue towards
// e1-0 is congested. Fixing this remotely requires the helper to see
//  (a) the QoS lines on c2 and agg1-1, and
//  (b) that the trace path h_A -> h_B actually crosses c2 and agg1-1
//      (the Waypoint property).
//
// The example anonymizes the network with ConfMask and with NetHide and
// checks whether the root cause survives each. ConfMask preserves every
// path exactly and passes unknown (QoS) lines through verbatim; NetHide
// reroutes flows through its virtual topology, hiding the faulty hop —
// exactly the failure the paper's Figure 1 illustrates.
#include <algorithm>
#include <cstdio>

#include "src/config/emit.hpp"
#include "src/core/confmask.hpp"
#include "src/netgen/networks.hpp"
#include "src/nethide/nethide.hpp"

namespace {

using namespace confmask;

/// Installs the paper's Listing 1 + Listing 2 misconfiguration.
void install_qos_misconfiguration(ConfigSet& configs) {
  // Listing 1: c2 marks inbound traffic from agg3-1 — but with the WRONG
  // (low-priority) DSCP class.
  auto* c2 = configs.find_router("c2");
  for (auto& iface : c2->interfaces) {
    if (iface.description == "to-agg3-1") {
      iface.extra_lines.push_back(
          "traffic-policy mark_agg31_priority inbound");
    }
  }
  c2->extra_lines.push_back("traffic classifier is_mgmt_traffic");
  c2->extra_lines.push_back("if-match any");
  c2->extra_lines.push_back("traffic behavior remark_mgmt_dscp");
  c2->extra_lines.push_back("remark dscp af11");  // BUG: should be af31
  c2->extra_lines.push_back("traffic policy mark_agg31_priority");
  c2->extra_lines.push_back("classifier is_mgmt_traffic behavior remark_mgmt_dscp");

  // Listing 2: agg1-1 trusts DSCP and starves the low-priority queue.
  auto* agg11 = configs.find_router("agg1-1");
  for (auto& iface : agg11->interfaces) {
    if (iface.description == "to-e1-0") {
      iface.extra_lines.push_back("trust dscp");
      iface.extra_lines.push_back("qos wrr 1 to 7");
      iface.extra_lines.push_back("qos queue 2 wrr weight 10");
      iface.extra_lines.push_back("qos queue 7 wrr weight 90");
    }
  }
}

/// True if the flow h_A -> h_B has a path crossing both c2 and agg1-1.
bool root_cause_visible(const DataPlane& dp) {
  const auto it = dp.flows.find({"h3-1-0", "h1-0-0"});
  if (it == dp.flows.end()) return false;
  for (const auto& path : it->second) {
    const bool via_c2 =
        std::find(path.begin(), path.end(), "c2") != path.end();
    const bool via_agg11 =
        std::find(path.begin(), path.end(), "agg1-1") != path.end();
    if (via_c2 && via_agg11) return true;
  }
  return false;
}

bool qos_lines_present(const ConfigSet& configs) {
  const auto* c2 = configs.find_router("c2");
  if (c2 == nullptr) return false;
  const auto text = emit_router(*c2);
  return text.find("remark dscp af11") != std::string::npos;
}

}  // namespace

int main() {
  ConfigSet network = make_fattree04();
  install_qos_misconfiguration(network);

  std::printf("case study: h_A(h3-1-0) -> h_B(h1-0-0) degraded; root cause "
              "on c2 (wrong DSCP) + agg1-1 (starved queue)\n\n");

  // Sanity: in the original network the engineer can see everything.
  {
    const Simulation sim(network);
    const auto dp = sim.extract_data_plane();
    std::printf("original network : root cause on trace path: %s\n",
                root_cause_visible(dp) ? "visible" : "HIDDEN");
  }

  // ConfMask.
  ConfMaskOptions options;
  options.seed = 7;
  const auto confmask_result = run_confmask(network, options);
  const bool cm_path = root_cause_visible(confmask_result.anonymized_dp);
  const bool cm_lines = qos_lines_present(confmask_result.anonymized);
  std::printf("ConfMask         : trace path %s, QoS config %s  => %s\n",
              cm_path ? "visible" : "HIDDEN",
              cm_lines ? "present" : "STRIPPED",
              cm_path && cm_lines ? "diagnosable" : "NOT diagnosable");

  // NetHide.
  NetHideOptions nethide_options;
  nethide_options.k_r = 10;  // the fat tree is 6-degree-anonymous already
  const auto nethide_result = run_nethide(network, nethide_options);
  const bool nh_path = root_cause_visible(nethide_result.data_plane);
  const bool nh_lines = qos_lines_present(nethide_result.obfuscated);
  std::printf("NetHide          : trace path %s, QoS config %s  => %s\n",
              nh_path ? "visible" : "HIDDEN",
              nh_lines ? "present" : "STRIPPED",
              nh_path && nh_lines ? "diagnosable" : "NOT diagnosable");

  std::printf("\nConfMask functional equivalence verified: %s\n",
              confmask_result.functionally_equivalent ? "yes" : "no");
  std::printf("\n--- QoS excerpt of anonymized c2 (shared with the helper) ---\n");
  const auto text = emit_router(*confmask_result.anonymized.find_router("c2"));
  // Print only the passthrough QoS lines.
  for (const char* needle :
       {"traffic classifier is_mgmt_traffic", "remark dscp af11",
        "traffic policy mark_agg31_priority"}) {
    if (text.find(needle) != std::string::npos) {
      std::printf("  %s\n", needle);
    }
  }
  return cm_path && cm_lines ? 0 : 1;
}
