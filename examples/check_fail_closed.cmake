# CTest driver proving the CLI's fail-closed contract end to end:
# with an injected verification divergence (via the CONFMASK_FAULTS
# environment channel of the fault registry), confmask_cli must
#   * exit with the NonConvergent category code (12),
#   * write NO anonymized configuration files,
#   * emit diagnostics JSON flagging the Verification stage.
# Invoked as:
#   cmake -DCLI=<path-to-confmask_cli> -DWORK_DIR=<scratch> -P check_fail_closed.cmake
if(NOT DEFINED CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DCLI=... -DWORK_DIR=... -P check_fail_closed.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(INPUT_DIR "${WORK_DIR}/demo")
set(OUTPUT_DIR "${WORK_DIR}/anon")
set(DIAG_JSON "${WORK_DIR}/diagnostics.json")

execute_process(COMMAND "${CLI}" --demo "${INPUT_DIR}" RESULT_VARIABLE demo_result)
if(NOT demo_result EQUAL 0)
  message(FATAL_ERROR "confmask_cli --demo failed: ${demo_result}")
endif()

# Arm the verification-divergence fault for every attempt the ladder makes.
set(ENV{CONFMASK_FAULTS} "confmask.verification.diverge=99")
execute_process(
  COMMAND "${CLI}" "${INPUT_DIR}" "${OUTPUT_DIR}" --diagnostics-json "${DIAG_JSON}"
  RESULT_VARIABLE cli_result
  OUTPUT_VARIABLE cli_stdout
  ERROR_VARIABLE cli_stderr)

if(NOT cli_result EQUAL 12)  # exit_code_for(NonConvergent)
  message(FATAL_ERROR "expected exit code 12 (NonConvergent), got "
                      "'${cli_result}'\nstdout:\n${cli_stdout}\nstderr:\n${cli_stderr}")
endif()

file(GLOB leaked "${OUTPUT_DIR}/*.cfg")
if(leaked)
  message(FATAL_ERROR "fail-closed violated: configs were written: ${leaked}")
endif()

file(READ "${DIAG_JSON}" diag)
if(NOT diag MATCHES "\"ok\": false")
  message(FATAL_ERROR "diagnostics JSON does not flag failure: ${diag}")
endif()
if(NOT diag MATCHES "\"stage\": \"Verification\"")
  message(FATAL_ERROR "diagnostics JSON does not name Verification: ${diag}")
endif()
if(NOT diag MATCHES "\"divergence\": \\[\n")
  message(FATAL_ERROR "diagnostics JSON has empty divergence: ${diag}")
endif()

message(STATUS "fail-closed contract holds: exit 12, no configs, divergence reported")
