// confmaskd — the batch anonymization daemon.
//
//   usage: confmaskd --socket PATH --cache-dir DIR
//                    [--max-concurrent-jobs N] [--max-pending N]
//                    [--trace FILE] [--jobs N]
//                    [--journal PATH] [--cache-budget BYTES]
//                    [--listen HOST:PORT] [--idle-timeout-ms N]
//                    [--max-line-bytes N]
//                    [--tenants FILE] [--peers EP1,EP2,...]
//                    [--self ENDPOINT] [--peer-timeout-ms N]
//          confmaskd --version
//
// Serves the confmaskd protocol (src/service/protocol.hpp) over a
// unix-domain socket — and, with --listen, a TCP port sharing the same
// connection manager: clients submit anonymization jobs, poll status,
// subscribe to streamed progress events, fetch artifacts, and ask for
// shutdown. Connections are served concurrently from one poll loop; an
// idle or slow client delays nobody and is reaped after --idle-timeout-ms
// of silence (default 60000; 0 disables). Identical resubmissions are
// served byte-identically from the content-addressed cache under
// --cache-dir without re-running the pipeline.
//
// --max-concurrent-jobs bounds pipelines running at once (each still fans
// its simulations out over the shared worker pool; --jobs sets that pool's
// size, as in confmask_cli). --trace streams every job's pipeline spans as
// NDJSON tagged with "job": "job-<id>".
//
// --journal makes acknowledged jobs durable: every accepted submission is
// fsync'd to a write-ahead journal before the ack, and after a crash
// (even kill -9) the daemon replays interrupted jobs on restart.
// --cache-budget caps the artifact cache, evicting least-recently-used
// entries (evicted results recompute on resubmission).
//
// Fleet mode: --tenants FILE loads per-tenant quotas (queue depth,
// concurrency, cache byte share, scheduler weight; tenant.hpp json-line
// format) and SIGHUP reloads it without a restart. --peers lists every
// fleet member's client endpoint (comma-separated); each cache key then
// has one rendezvous-hash owner, and a local miss asks the owner for the
// bytes (bounded by --peer-timeout-ms) before computing. --self spells
// this daemon's endpoint exactly as the peers list does — defaults to
// --socket, right whenever the fleet shares a filesystem.
//
// Stops on a protocol shutdown request: "drain" finishes queued jobs,
// "cancel" abandons them; running jobs always complete (fail-closed — no
// partial cache entries either way).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "src/service/daemon.hpp"
#include "src/util/build_info.hpp"
#include "src/util/thread_pool.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: confmaskd --socket PATH --cache-dir DIR "
               "[--max-concurrent-jobs N] [--max-pending N] [--trace FILE] "
               "[--jobs N] [--journal PATH] [--cache-budget BYTES] "
               "[--listen HOST:PORT] [--idle-timeout-ms N] "
               "[--max-line-bytes N] [--tenants FILE] "
               "[--peers EP1,EP2,...] [--self ENDPOINT] "
               "[--peer-timeout-ms N]\n"
               "       confmaskd --version\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "--version") == 0) {
    std::printf("%s\n", confmask::build_stamp().c_str());
    return 0;
  }

  confmask::Daemon::Options options;
  std::string trace_file;
  for (int i = 1; i < argc; i += 2) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      return usage();
    }
    if (std::strcmp(argv[i], "--socket") == 0) {
      options.socket_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--cache-dir") == 0) {
      options.cache_dir = argv[i + 1];
    } else if (std::strcmp(argv[i], "--max-concurrent-jobs") == 0) {
      options.max_concurrent_jobs = std::atoi(argv[i + 1]);
      if (options.max_concurrent_jobs < 1) {
        std::fprintf(stderr, "--max-concurrent-jobs must be >= 1\n");
        return usage();
      }
    } else if (std::strcmp(argv[i], "--max-pending") == 0) {
      const int pending = std::atoi(argv[i + 1]);
      if (pending < 1) {
        std::fprintf(stderr, "--max-pending must be >= 1\n");
        return usage();
      }
      options.max_pending = static_cast<std::size_t>(pending);
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace_file = argv[i + 1];
    } else if (std::strcmp(argv[i], "--journal") == 0) {
      options.journal_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--cache-budget") == 0) {
      options.cache_max_bytes = std::strtoull(argv[i + 1], nullptr, 10);
      if (options.cache_max_bytes == 0) {
        std::fprintf(stderr, "--cache-budget must be > 0 bytes\n");
        return usage();
      }
    } else if (std::strcmp(argv[i], "--listen") == 0) {
      options.listen_address = argv[i + 1];
    } else if (std::strcmp(argv[i], "--idle-timeout-ms") == 0) {
      options.idle_timeout_ms = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--max-line-bytes") == 0) {
      options.max_line_bytes = std::strtoull(argv[i + 1], nullptr, 10);
      if (options.max_line_bytes == 0) {
        std::fprintf(stderr, "--max-line-bytes must be > 0\n");
        return usage();
      }
    } else if (std::strcmp(argv[i], "--tenants") == 0) {
      options.tenants_file = argv[i + 1];
    } else if (std::strcmp(argv[i], "--peers") == 0) {
      // Comma-separated endpoints; self is added automatically when the
      // list omits it, so "the same --peers on every member" just works.
      const std::string list = argv[i + 1];
      std::size_t start = 0;
      while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string endpoint =
            list.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
        if (!endpoint.empty()) options.peers.push_back(endpoint);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      if (options.peers.empty()) {
        std::fprintf(stderr, "--peers needs at least one endpoint\n");
        return usage();
      }
    } else if (std::strcmp(argv[i], "--self") == 0) {
      options.self_endpoint = argv[i + 1];
    } else if (std::strcmp(argv[i], "--peer-timeout-ms") == 0) {
      const unsigned long long timeout =
          std::strtoull(argv[i + 1], nullptr, 10);
      if (timeout == 0 || timeout > 600'000) {
        std::fprintf(stderr, "--peer-timeout-ms must be in 1..600000\n");
        return usage();
      }
      options.peer_timeout_ms = static_cast<std::uint32_t>(timeout);
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      const int jobs = std::atoi(argv[i + 1]);
      if (jobs < 1) {
        std::fprintf(stderr, "--jobs must be >= 1\n");
        return usage();
      }
      confmask::ThreadPool::configure(static_cast<unsigned>(jobs));
    } else {
      return usage();
    }
  }
  if (options.socket_path.empty() || options.cache_dir.empty()) {
    return usage();
  }

  std::ofstream trace_out;
  if (!trace_file.empty()) {
    trace_out.open(trace_file);
    if (!trace_out) {
      std::fprintf(stderr, "cannot write %s\n", trace_file.c_str());
      return 1;
    }
    options.trace_stream = &trace_out;
  }

  confmask::Daemon daemon(options);
  return daemon.run();
}
