// Adversary's-eye view: run the de-anonymization toolbox of §2.2/§3.2
// against three ways of adding fake links, on the Bics ISP network.
//
//   $ ./attack_evaluation
//
// The adversary holds only what a configuration recipient holds — the
// files and a simulator — and tries to separate fake links from real
// ones. The output is the §3.2 narrative, measured:
//   naive (bare interfaces)  -> unconfigured-interface attack wins;
//   large-cost fake links    -> zero-traffic attack wins (100% TPR);
//   ConfMask (min-cost + fake hosts + noise) -> both attacks starve, and
//   degree re-identification is capped at k_R candidates.
#include <cstdio>

#include "src/core/confmask.hpp"
#include "src/core/deanonymize.hpp"
#include "src/netgen/networks.hpp"
#include "src/routing/simulation.hpp"

int main() {
  using namespace confmask;
  const ConfigSet original = make_bics();
  std::printf("target: Bics (49 routers); adversary gets the anonymized "
              "files and a simulator\n\n");
  std::printf("%-34s %10s %12s %12s %12s\n", "defense", "fake links",
              "unconfig'd", "0-traffic", "re-id cand.");

  const auto evaluate = [&](const char* label, const ConfigSet& anonymized,
                            const DataPlane& dp) {
    const auto unconfigured = unconfigured_interface_links(anonymized);
    const auto zero_traffic = zero_traffic_links(anonymized, dp);
    const auto report_a = score_attack(original, anonymized, unconfigured);
    const auto report_b = score_attack(original, anonymized, zero_traffic);
    std::printf("%-34s %10zu %11.0f%% %11.0f%% %12d\n", label,
                report_a.fake_links, 100.0 * report_a.true_positive_rate(),
                100.0 * report_b.true_positive_rate(),
                min_reidentification_candidates(anonymized));
  };

  // 0. Baseline: the original network (nothing to find, 1-candidate
  //    re-identification).
  {
    const Simulation sim(original);
    evaluate("none (original network)", original, sim.extract_data_plane());
  }

  // 1. Naive §3.2-step-1 fake links: bare interface pairs.
  {
    ConfigSet naive = original;
    PrefixAllocator allocator;
    for (const auto& p : original.used_prefixes()) allocator.reserve(p);
    for (int i = 0; i + 1 < 12; i += 2) {
      const auto prefix = allocator.allocate_link();
      auto& ra = naive.routers[static_cast<std::size_t>(i)];
      auto& rb = naive.routers[static_cast<std::size_t>(i + 1) * 3 % 49];
      InterfaceConfig a;
      a.name = ra.fresh_interface_name();
      a.address = prefix.host(0);
      a.prefix_length = 31;
      ra.interfaces.push_back(a);
      InterfaceConfig b;
      b.name = rb.fresh_interface_name();
      b.address = prefix.host(1);
      b.prefix_length = 31;
      rb.interfaces.push_back(b);
    }
    const Simulation sim(naive);
    evaluate("naive: bare interface pairs", naive,
             sim.extract_data_plane());
  }

  // 2. Large-cost fake links (the §3.2 option-ii strawman).
  {
    ConfMaskOptions options;
    options.cost_policy = FakeLinkCostPolicy::kLarge;
    options.seed = 42;
    const auto result = run_confmask(original, options);
    evaluate("strawman: cost = 60000", result.anonymized,
             result.anonymized_dp);
  }

  // 3. Full ConfMask (min-cost fake links, fake hosts, noise filters).
  {
    ConfMaskOptions options;
    options.seed = 42;
    const auto result = run_confmask(original, options);
    evaluate("ConfMask (min-cost + Alg.2)", result.anonymized,
             result.anonymized_dp);
  }

  // 4. ConfMask + fake routers (the §9 extension).
  {
    ConfMaskOptions options;
    options.seed = 42;
    options.fake_routers = 5;
    const auto result = run_confmask(original, options);
    evaluate("ConfMask + 5 fake routers", result.anonymized,
             result.anonymized_dp);
  }

  std::printf(
      "\nreading: 'unconfig'd'/'0-traffic' = share of fake links each "
      "attack identifies (lower is better);\n're-id cand.' = smallest "
      "candidate set when matching routers by degree (higher is better, "
      ">= k_R by design).\n");
  return 0;
}
