// confmask-client — command-line client for confmaskd.
//
//   usage: confmask-client --socket ENDPOINT <command> [args]
//     ENDPOINT is a unix socket path, or HOST:PORT for a daemon started
//     with --listen
//     submit <config-dir> [--kr N] [--kh N] [--p FLOAT] [--seed N]
//            [--fake-routers N] [--deadline-ms N] [--tenant NAME]
//                                    submit every *.cfg under <config-dir>;
//                                    load-shed rejections (retry_after_ms)
//                                    are retried with backoff + jitter
//     diff <base-dir> <edited-dir>   print a confmask-diff/1 document to
//                                    stdout (local; no daemon needed)
//     resubmit <base-key> <diff-file> [same flags as submit]
//                                    watch mode: re-anonymize the base
//                                    cache entry with an edit applied;
//                                    <diff-file> is a confmask-diff/1
//                                    document ("-" reads stdin)
//     status <job>                   one status line
//     wait <job>                     subscribe to the job's event stream
//                                    and block until it is terminal (falls
//                                    back to status polling against an
//                                    older daemon), then print the final
//                                    status line
//     subscribe <job>                print the job's event stream raw:
//                                    the ack, per-stage pipeline spans,
//                                    state transitions, until terminal
//     result <job> [--out DIR]      fetch artifacts; --out writes the
//                                    anonymized configs as *.cfg files
//     cancel <job>
//     stats
//     ping                           daemon health: build stamp, uptime,
//                                    queue depth, journal/cache vitals
//     shutdown [drain|cancel]
//
// Every command prints the daemon's raw JSON response line to stdout (so
// scripts can grep fields like "job" or "cache_hit") and exits 0 when the
// response says ok, 1 on a protocol error, 2 on usage/transport problems.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <thread>

#include "src/config/diff.hpp"
#include "src/config/emit.hpp"
#include "src/config/parse.hpp"
#include "src/service/client.hpp"
#include "src/service/json_line.hpp"

namespace {

using namespace confmask;
namespace fs = std::filesystem;

int usage() {
  std::fprintf(
      stderr,
      "usage: confmask-client --socket ENDPOINT <command> [args]\n"
      "  ENDPOINT: unix socket path, or HOST:PORT (daemon --listen)\n"
      "  submit <config-dir> [--kr N] [--kh N] [--p FLOAT] [--seed N] "
      "[--fake-routers N] [--deadline-ms N] [--tenant NAME]\n"
      "  diff <base-dir> <edited-dir>          (local, no --socket needed)\n"
      "  resubmit <base-key> <diff-file>       [same flags as submit]\n"
      "  status <job> | wait <job> | subscribe <job> | "
      "result <job> [--out DIR] | cancel <job>\n"
      "  stats | ping | shutdown [drain|cancel]\n");
  return 2;
}

/// Parses every *.cfg under `dir` into `out`. Returns 0, or 2 after
/// printing the error.
int read_config_dir(const std::string& dir, ConfigSet& out) {
  std::error_code io_error;
  fs::directory_iterator it(dir, io_error);
  if (io_error) {
    std::fprintf(stderr, "cannot read %s: %s\n", dir.c_str(),
                 io_error.message().c_str());
    return 2;
  }
  try {
    for (const auto& entry : it) {
      if (entry.path().extension() != ".cfg") continue;
      std::ifstream in(entry.path());
      const std::string text((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
      if (looks_like_host(text)) {
        out.hosts.push_back(
            parse_host(text, entry.path().filename().string()));
      } else {
        out.routers.push_back(
            parse_router(text, entry.path().filename().string()));
      }
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "parse error: %s\n", error.what());
    return 2;
  }
  return 0;
}

/// Appends the submit/resubmit tuning flags to `request`. Both ops accept
/// the identical parameter surface — a resubmit IS a submit whose bundle
/// arrives as base + diff. Returns false on an unknown flag.
bool append_job_flags(int argc, char** argv, int arg,
                      JsonLineWriter& request) {
  for (; arg + 1 < argc; arg += 2) {
    if (std::strcmp(argv[arg], "--kr") == 0) {
      request.number("k_r", std::atoi(argv[arg + 1]));
    } else if (std::strcmp(argv[arg], "--kh") == 0) {
      request.number("k_h", std::atoi(argv[arg + 1]));
    } else if (std::strcmp(argv[arg], "--p") == 0) {
      request.real("noise_p", std::atof(argv[arg + 1]));
    } else if (std::strcmp(argv[arg], "--seed") == 0) {
      request.number_u64("seed", std::strtoull(argv[arg + 1], nullptr, 10));
    } else if (std::strcmp(argv[arg], "--fake-routers") == 0) {
      request.number("fake_routers", std::atoi(argv[arg + 1]));
    } else if (std::strcmp(argv[arg], "--deadline-ms") == 0) {
      request.number_u64("deadline_ms",
                         std::strtoull(argv[arg + 1], nullptr, 10));
    } else if (std::strcmp(argv[arg], "--tenant") == 0) {
      request.string("tenant", argv[arg + 1]);
    } else {
      return false;
    }
  }
  return true;
}

/// Sends an admission request through the retrying path — a daemon at its
/// limit answers with retry_after_ms and we back off rather than fail —
/// then prints the response and returns the exit code.
int send_with_retry(const std::string& socket_path,
                    const std::string& request) {
  TransportError transport;
  const auto response =
      client_submit_with_retry(socket_path, request, {}, &transport);
  if (!response) {
    std::fprintf(stderr, "confmask-client: %s: %s\n",
                 to_string(transport.failure), transport.detail.c_str());
    return 2;
  }
  std::printf("%s\n", response->c_str());
  const auto parsed = parse_json_line(*response);
  if (!parsed) {
    std::fprintf(stderr, "confmask-client: unparsable response\n");
    return 2;
  }
  return get_bool(*parsed, "ok") == true ? 0 : 1;
}

/// Sends one request; prints the response; returns the exit code. Fills
/// `response_out` for callers that need the parsed object.
int roundtrip(const std::string& socket_path, const std::string& request,
              JsonObject* response_out = nullptr) {
  std::string error;
  const auto response = client_roundtrip(socket_path, request, &error);
  if (!response) {
    std::fprintf(stderr, "confmask-client: %s\n", error.c_str());
    return 2;
  }
  std::printf("%s\n", response->c_str());
  const auto parsed = parse_json_line(*response);
  if (!parsed) {
    std::fprintf(stderr, "confmask-client: unparsable response\n");
    return 2;
  }
  if (response_out != nullptr) *response_out = *parsed;
  return get_bool(*parsed, "ok") == true ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  int arg = 1;
  if (arg + 1 < argc && std::strcmp(argv[arg], "--socket") == 0) {
    socket_path = argv[arg + 1];
    arg += 2;
  }
  if (arg >= argc) return usage();
  const std::string command = argv[arg++];
  // `diff` is purely local; every other command talks to the daemon.
  if (socket_path.empty() && command != "diff") return usage();

  if (command == "diff") {
    if (arg + 1 >= argc) return usage();
    ConfigSet base;
    ConfigSet edited;
    if (const int code = read_config_dir(argv[arg], base); code != 0) {
      return code;
    }
    if (const int code = read_config_dir(argv[arg + 1], edited); code != 0) {
      return code;
    }
    std::fputs(render_bundle_diff(base, edited).c_str(), stdout);
    return 0;
  }

  if (command == "submit") {
    if (arg >= argc) return usage();
    const std::string dir = argv[arg++];
    JsonLineWriter request;
    request.string("op", "submit");

    ConfigSet configs;
    if (const int code = read_config_dir(dir, configs); code != 0) {
      return code;
    }
    if (configs.routers.empty()) {
      std::fprintf(stderr, "no router configurations found in %s\n",
                   dir.c_str());
      return 2;
    }
    request.string("configs",
                   canonical_config_set_text(canonicalize(configs)));
    if (!append_job_flags(argc, argv, arg, request)) return usage();
    return send_with_retry(socket_path, request.str());
  }

  if (command == "resubmit") {
    if (arg + 1 >= argc) return usage();
    const std::string base_key = argv[arg++];
    const std::string diff_path = argv[arg++];
    std::string diff_text;
    if (diff_path == "-") {
      diff_text.assign(std::istreambuf_iterator<char>(std::cin),
                       std::istreambuf_iterator<char>());
    } else {
      std::ifstream in(diff_path);
      if (!in) {
        std::fprintf(stderr, "cannot read %s\n", diff_path.c_str());
        return 2;
      }
      diff_text.assign(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
    }
    JsonLineWriter request;
    request.string("op", "resubmit");
    request.string("base", base_key);
    request.string("diff", diff_text);
    if (!append_job_flags(argc, argv, arg, request)) return usage();
    return send_with_retry(socket_path, request.str());
  }

  if (command == "status" || command == "wait" || command == "cancel" ||
      command == "subscribe") {
    if (arg >= argc) return usage();
    const std::uint64_t job = std::strtoull(argv[arg], nullptr, 10);
    if (command == "status" || command == "cancel") {
      return roundtrip(socket_path, JsonLineWriter{}
                                        .string("op", command)
                                        .number_u64("job", job)
                                        .str());
    }

    const std::string subscribe_request = JsonLineWriter{}
                                              .string("op", "subscribe")
                                              .number_u64("job", job)
                                              .str();
    if (command == "subscribe") {
      bool saw_ack = false;
      bool ack_ok = false;
      TransportError transport;
      const bool streamed = client_stream(
          socket_path, subscribe_request,
          [&](const std::string& line) {
            std::printf("%s\n", line.c_str());
            std::fflush(stdout);
            if (!saw_ack) {
              saw_ack = true;
              const auto parsed = parse_json_line(line);
              ack_ok = parsed && get_bool(*parsed, "ok") == true;
              return ack_ok;  // a refused subscribe has no stream behind it
            }
            return true;
          },
          &transport);
      if (!streamed) {
        std::fprintf(stderr, "confmask-client: %s: %s\n",
                     to_string(transport.failure), transport.detail.c_str());
        return 2;
      }
      return ack_ok ? 0 : 1;
    }

    // wait: ride the subscribe stream to the terminal event — the daemon
    // pushes every transition, so no polling tick and no poll latency —
    // then print one final status line (the stable, script-visible
    // output). An older daemon that rejects subscribe degrades to the
    // classic 50ms status poll.
    bool stream_done = false;
    {
      bool saw_ack = false;
      bool ack_ok = false;
      TransportError transport;
      const bool streamed = client_stream(
          socket_path, subscribe_request,
          [&](const std::string& line) {
            if (saw_ack) return true;  // consume events until server close
            saw_ack = true;
            const auto parsed = parse_json_line(line);
            ack_ok = parsed && get_bool(*parsed, "ok") == true;
            return ack_ok;
          },
          &transport);
      stream_done = streamed && ack_ok;
    }
    const std::string status_request = JsonLineWriter{}
                                           .string("op", "status")
                                           .number_u64("job", job)
                                           .str();
    for (;;) {
      std::string error;
      const auto response =
          client_roundtrip(socket_path, status_request, &error);
      if (!response) {
        std::fprintf(stderr, "confmask-client: %s\n", error.c_str());
        return 2;
      }
      const auto parsed = parse_json_line(*response);
      const auto state =
          parsed ? get_string(*parsed, "state") : std::nullopt;
      if (!parsed || get_bool(*parsed, "ok") != true) {
        std::printf("%s\n", response->c_str());
        return 1;
      }
      if (state == "done" || state == "failed" || state == "cancelled") {
        std::printf("%s\n", response->c_str());
        return state == "done" ? 0 : 1;
      }
      if (stream_done) {
        // The stream said terminal but status does not agree — should not
        // happen; degrade to polling rather than looping on the stream.
        stream_done = false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }

  if (command == "result") {
    if (arg >= argc) return usage();
    const std::uint64_t job = std::strtoull(argv[arg++], nullptr, 10);
    std::string out_dir;
    if (arg + 1 < argc && std::strcmp(argv[arg], "--out") == 0) {
      out_dir = argv[arg + 1];
      arg += 2;
    }
    JsonObject response;
    const int code = roundtrip(
        socket_path,
        JsonLineWriter{}.string("op", "result").number_u64("job", job).str(),
        &response);
    if (code != 0 || out_dir.empty()) return code;
    const auto bundle = get_string(response, "configs");
    if (!bundle || bundle->empty()) {
      std::fprintf(stderr, "no configs in result (failed job?)\n");
      return 1;
    }
    try {
      const ConfigSet configs = parse_config_set(*bundle);
      fs::create_directories(out_dir);
      for (const auto& router : configs.routers) {
        std::ofstream(fs::path(out_dir) / (router.hostname + ".cfg"))
            << emit_router(router);
      }
      for (const auto& host : configs.hosts) {
        std::ofstream(fs::path(out_dir) / (host.hostname + ".cfg"))
            << emit_host(host);
      }
    } catch (const std::exception& error) {
      std::fprintf(stderr, "cannot write %s: %s\n", out_dir.c_str(),
                   error.what());
      return 1;
    }
    return 0;
  }

  if (command == "stats") {
    return roundtrip(socket_path,
                     JsonLineWriter{}.string("op", "stats").str());
  }

  if (command == "ping") {
    return roundtrip(socket_path,
                     JsonLineWriter{}.string("op", "ping").str());
  }

  if (command == "shutdown") {
    std::string mode = "drain";
    if (arg < argc) mode = argv[arg];
    if (mode != "drain" && mode != "cancel") return usage();
    return roundtrip(
        socket_path,
        JsonLineWriter{}.string("op", "shutdown").string("mode", mode).str());
  }

  return usage();
}
