// confmask_cli — the end-to-end anonymizer as a command-line tool.
//
//   usage: confmask_cli <input-dir> <output-dir> [--kr N] [--kh N]
//                       [--p FLOAT] [--seed N] [--fake-routers N] [--pii B]
//                       [--jobs N] [--diagnostics-json FILE]
//                       [--trace FILE] [--metrics-json FILE]
//                       [--cache-dir DIR]
//          confmask_cli --version
//
// --version prints the build stamp (the same string the artifact cache
// embeds in entry metadata for stale-binary invalidation).
//
// --cache-dir DIR consults the serving layer's content-addressed cache
// before running: a prior run with the same network and parameters (by any
// confmask_cli or confmaskd sharing DIR) is replayed byte-identically
// without re-simulation, and fresh successful runs are stored. Caching is
// bypassed when --pii is on: the PII key derives from the EFFECTIVE seed
// of a live run, which a cache hit does not replay.
//
// --jobs N sets the simulation worker-thread count (default: the
// CONFMASK_JOBS environment variable, else hardware concurrency). Results
// are bit-identical for any value.
//
// --trace FILE streams the run as NDJSON span/event lines
// (confmask.trace/1); --metrics-json FILE writes the end-of-run metrics
// summary (confmask.metrics/1: per-phase counters, histograms, timings,
// pool utilization). Both are written whether the run succeeds or fails
// closed. The summary's deterministic content (spans/totals/histograms) is
// identical for any --jobs value; only "timings"/"pool" vary.
//
// Reads every *.cfg file in <input-dir> (host configurations are detected
// by their `ip default-gateway` line), runs the full ConfMask pipeline
// under the guarded runner (retry/fallback ladder + fail-closed
// verification gate), and writes the anonymized files to <output-dir>.
//
// The CLI NEVER writes configs whose functional equivalence was not
// verified. On failure it prints the diagnostics (stage, category, the
// first divergent ⟨router, host, next-hop⟩ triples) and exits with a
// category-specific code:
//   0  success           10  InfeasibleParams   11  ResourceExhausted
//   1  I/O failure       12  NonConvergent      13  ParseError
//   2  usage             14  Internal
// --diagnostics-json additionally writes the full machine-readable
// diagnostics (status, fallback ladder events, divergence) to FILE.
//
// Try it on the output of the `research_sharing` example, or generate an
// input set with `confmask_cli --demo <dir>` which writes the paper's
// Figure 2 network; `--demo <dir> <ID>` (ID in A..H) writes one of the
// Table 2 evaluation networks instead.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <system_error>

#include "src/config/emit.hpp"
#include "src/config/parse.hpp"
#include "src/core/confmask.hpp"
#include "src/core/metrics.hpp"
#include "src/core/pipeline_runner.hpp"
#include "src/core/pipeline_trace.hpp"
#include "src/netgen/networks.hpp"
#include "src/pii/pii_addon.hpp"
#include "src/service/artifact_cache.hpp"
#include "src/service/cache_key.hpp"
#include "src/util/build_info.hpp"
#include "src/util/thread_pool.hpp"

namespace {

using namespace confmask;
namespace fs = std::filesystem;

int usage() {
  std::fprintf(stderr,
               "usage: confmask_cli <input-dir> <output-dir> [--kr N] "
               "[--kh N] [--p FLOAT] [--seed N] [--fake-routers N] "
               "[--pii 0|1] [--jobs N] [--diagnostics-json FILE] "
               "[--trace FILE] [--metrics-json FILE] [--cache-dir DIR]\n"
               "       confmask_cli --demo <dir> [A-H]   (write a demo "
               "network: paper Fig 2, or evaluation network A..H)\n"
               "       confmask_cli --version             (build stamp)\n");
  return 2;
}

void write_config_set(const ConfigSet& configs, const fs::path& dir) {
  fs::create_directories(dir);
  for (const auto& router : configs.routers) {
    std::ofstream(dir / (router.hostname + ".cfg")) << emit_router(router);
  }
  for (const auto& host : configs.hosts) {
    std::ofstream(dir / (host.hostname + ".cfg")) << emit_host(host);
  }
}

/// Machine-readable diagnostics — the shared renderer (diagnostics_to_json)
/// also backs the serving layer's cached diagnostics artifact, so the two
/// payloads can never fork.
void write_diagnostics_json(const fs::path& file,
                            const PipelineDiagnostics& diag) {
  std::ofstream(file) << diagnostics_to_json(diag);
}

void print_fallbacks(const PipelineDiagnostics& diag) {
  for (const auto& event : diag.fallbacks) {
    std::fprintf(stderr, "fallback [attempt %d] %s: %s\n", event.attempt,
                 to_string(event.kind), event.detail.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "--version") == 0) {
    std::printf("%s\n", build_stamp().c_str());
    return 0;
  }
  if (argc >= 3 && std::strcmp(argv[1], "--demo") == 0) {
    if (argc >= 4) {
      for (const auto& network : evaluation_networks()) {
        if (network.id == argv[3]) {
          write_config_set(network.configs, argv[2]);
          std::printf("wrote evaluation network %s (%s, %s) to %s\n",
                      network.id.c_str(), network.name.c_str(),
                      network.type.c_str(), argv[2]);
          return 0;
        }
      }
      std::fprintf(stderr, "unknown evaluation network '%s' (want A..H)\n",
                   argv[3]);
      return 2;
    }
    write_config_set(make_figure2(), argv[2]);
    std::printf("wrote demo network (paper Fig 2) to %s\n", argv[2]);
    return 0;
  }
  if (argc < 3) return usage();

  ConfMaskOptions options;
  bool apply_pii = false;
  std::string diagnostics_json;
  std::string trace_file;
  std::string metrics_file;
  std::string cache_dir;
  for (int i = 3; i < argc; i += 2) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      return usage();
    }
    if (std::strcmp(argv[i], "--kr") == 0) {
      options.k_r = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--kh") == 0) {
      options.k_h = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--p") == 0) {
      options.noise_p = std::atof(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      options.seed = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--fake-routers") == 0) {
      options.fake_routers = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--pii") == 0) {
      apply_pii = std::atoi(argv[i + 1]) != 0;
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      const int jobs = std::atoi(argv[i + 1]);
      if (jobs < 1) {
        std::fprintf(stderr, "--jobs must be >= 1\n");
        return usage();
      }
      ThreadPool::configure(static_cast<unsigned>(jobs));
    } else if (std::strcmp(argv[i], "--diagnostics-json") == 0) {
      diagnostics_json = argv[i + 1];
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace_file = argv[i + 1];
    } else if (std::strcmp(argv[i], "--metrics-json") == 0) {
      metrics_file = argv[i + 1];
    } else if (std::strcmp(argv[i], "--cache-dir") == 0) {
      cache_dir = argv[i + 1];
    } else {
      return usage();
    }
  }

  // Ingest. Parse errors name the failing file (ConfigParseError source).
  std::error_code io_error;
  fs::directory_iterator input_it(argv[1], io_error);
  if (io_error) {
    std::fprintf(stderr, "cannot read %s: %s\n", argv[1],
                 io_error.message().c_str());
    return 1;
  }
  ConfigSet original;
  for (const auto& entry : input_it) {
    if (entry.path().extension() != ".cfg") continue;
    std::ifstream in(entry.path());
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    const std::string source = entry.path().filename().string();
    try {
      if (looks_like_host(text)) {
        original.hosts.push_back(parse_host(text, source));
      } else {
        original.routers.push_back(parse_router(text, source));
      }
    } catch (const ConfigParseError& error) {
      std::fprintf(stderr, "parse error: %s\n", error.what());
      if (!diagnostics_json.empty()) {
        PipelineDiagnostics diag;
        diag.category = ErrorCategory::kParseError;
        diag.stage = PipelineStage::kPreprocess;
        diag.message = error.what();
        diag.attempts = 0;
        write_diagnostics_json(diagnostics_json, diag);
      }
      return exit_code_for(ErrorCategory::kParseError);
    }
  }
  if (original.routers.empty()) {
    std::fprintf(stderr, "no router configurations found in %s\n", argv[1]);
    return 1;
  }
  std::printf("read %zu routers, %zu hosts from %s\n",
              original.routers.size(), original.hosts.size(), argv[1]);

  // Content-addressed cache (the serving layer's ArtifactCache) for
  // one-shot runs. A hit replays a prior verified run byte-identically.
  if (!cache_dir.empty() && apply_pii) {
    std::fprintf(stderr,
                 "--pii bypasses --cache-dir: the PII key derives from the "
                 "effective seed of a live run\n");
    cache_dir.clear();
  }
  std::unique_ptr<ArtifactCache> cache;
  CacheKey cache_key;
  if (!cache_dir.empty()) {
    // Cached runs must execute on the canonical device ordering — device
    // order feeds pipeline tie-breaks, and the key is over canonical text.
    original = canonicalize(std::move(original));
    cache = std::make_unique<ArtifactCache>(cache_dir);
    cache_key = compute_cache_key(original, options, RetryPolicy{},
                                  EquivalenceStrategy::kConfMask);
    if (const auto hit = cache->lookup(cache_key)) {
      if (!diagnostics_json.empty()) {
        std::ofstream(diagnostics_json) << hit->diagnostics_json;
      }
      if (!metrics_file.empty()) {
        // The cached summary is the deterministic half (no timings).
        std::ofstream(metrics_file) << hit->metrics_json;
      }
      try {
        write_config_set(parse_config_set(hit->anonymized_configs), argv[2]);
      } catch (const std::exception& error) {
        std::fprintf(stderr, "corrupt cache entry %s: %s\n",
                     cache_key.hex().c_str(), error.what());
        return 1;
      }
      std::printf("cache hit %s: anonymized configs written to %s\n",
                  cache_key.hex().c_str(), argv[2]);
      return 0;
    }
  }

  // Observability: install a PipelineTrace when --trace/--metrics-json was
  // asked for (or a cache store will need the deterministic metrics
  // artifact). The NDJSON stream flows while the run happens; the metrics
  // summary is written below, success or failure.
  std::ofstream trace_out;
  if (!trace_file.empty()) {
    trace_out.open(trace_file);
    if (!trace_out) {
      std::fprintf(stderr, "cannot write %s\n", trace_file.c_str());
      return 1;
    }
  }
  std::unique_ptr<PipelineTrace> trace;
  if (!trace_file.empty() || !metrics_file.empty() || cache != nullptr) {
    PipelineTrace::Options trace_options;
    if (trace_out.is_open()) trace_options.trace_sink = &trace_out;
    trace = std::make_unique<PipelineTrace>(trace_options);
  }

  // Anonymize under the guarded runner: retries/fallbacks are automatic
  // and verification failure can never fail open into written configs.
  const auto guarded = run_pipeline_guarded(original, options);
  const auto& diag = guarded.diagnostics;
  if (!diagnostics_json.empty()) write_diagnostics_json(diagnostics_json, diag);
  if (!metrics_file.empty()) {
    std::ofstream(metrics_file) << trace->metrics_json(true);
  }
  print_fallbacks(diag);

  if (!guarded.ok()) {
    std::fprintf(stderr,
                 "pipeline FAILED closed after %d attempt(s) at stage %s "
                 "(%s): %s\n",
                 diag.attempts, to_string(diag.stage),
                 to_string(diag.category), diag.message.c_str());
    for (const auto& entry : diag.divergence) {
      std::string expected = "{";
      for (const auto& hop : entry.lhs_next_hops) {
        expected += (expected.size() > 1 ? ", " : "") + hop;
      }
      expected += "}";
      std::string actual = "{";
      for (const auto& hop : entry.rhs_next_hops) {
        actual += (actual.size() > 1 ? ", " : "") + hop;
      }
      actual += "}";
      std::fprintf(stderr,
                   "  divergence: flow %s -> %s at %s: expected next hops "
                   "%s, got %s\n",
                   entry.source.c_str(), entry.destination.c_str(),
                   entry.router.empty() ? "(whole flow)"
                                        : entry.router.c_str(),
                   expected.c_str(), actual.c_str());
    }
    std::fprintf(stderr, "no configuration files were written\n");
    return exit_code_for(diag.category);
  }

  const auto& result = *guarded.result;
  const auto& effective = guarded.effective_options;
  if (cache != nullptr) {
    CacheArtifacts artifacts;
    artifacts.anonymized_configs = canonical_config_set_text(result.anonymized);
    // `original` was canonicalized above when the cache was armed, so this
    // is the exact diff base a daemon resubmit would patch against.
    artifacts.original_configs = canonical_config_set_text(original);
    artifacts.diagnostics_json = diagnostics_to_json(diag);
    artifacts.metrics_json = trace->metrics_json(/*include_timings=*/false);
    cache->store(cache_key, artifacts);
  }
  std::printf("k_R=%d k_H=%d p=%.2f seed=%llu: +%zu fake links, +%zu fake "
              "hosts, +%zu lines, %d filters, %.2fs (%llu simulations, %d "
              "attempt(s))\n",
              effective.k_r, effective.k_h, effective.noise_p,
              static_cast<unsigned long long>(effective.seed),
              result.stats.fake_intra_links + result.stats.fake_inter_links,
              result.stats.fake_hosts, result.stats.added_lines(),
              result.stats.equivalence_filters + result.stats.anonymity_filters,
              result.stats.seconds,
              static_cast<unsigned long long>(result.stats.simulations),
              diag.attempts);

  ConfigSet published = result.anonymized;
  if (apply_pii) {
    PiiOptions pii_options;
    pii_options.key = effective.seed ^ 0x9E3779B97F4A7C15ULL;
    auto pii = apply_pii_addon(published, pii_options);
    published = std::move(pii.configs);
    std::printf("PII add-on: renumbered addresses, renamed %zu devices, "
                "hashed %zu AS numbers, scrubbed %d secret lines\n",
                pii.device_names.size(), pii.as_numbers.size(),
                pii.scrubbed_lines);
  }
  write_config_set(published, argv[2]);
  std::printf("functional equivalence verified; anonymized configs written "
              "to %s\n",
              argv[2]);
  std::printf("topology k-anonymity: %d; route anonymity N_r: %.2f avg\n",
              topology_min_degree_class_two_level(result.anonymized),
              route_anonymity_nr(result.anonymized_dp).average);
  return 0;
}
