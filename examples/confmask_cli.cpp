// confmask_cli — the end-to-end anonymizer as a command-line tool.
//
//   usage: confmask_cli <input-dir> <output-dir> [--kr N] [--kh N]
//                       [--p FLOAT] [--seed N] [--fake-routers N] [--pii B]
//
// Reads every *.cfg file in <input-dir> (host configurations are detected
// by their `ip default-gateway` line), runs the full ConfMask pipeline,
// verifies functional equivalence by simulation, and writes the
// anonymized files to <output-dir>. Exits non-zero if verification fails.
//
// Try it on the output of the `research_sharing` example, or generate an
// input set with `confmask_cli --demo <dir>` which writes the paper's
// Figure 2 network.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "src/config/emit.hpp"
#include "src/config/parse.hpp"
#include "src/core/confmask.hpp"
#include "src/core/metrics.hpp"
#include "src/netgen/networks.hpp"
#include "src/pii/pii_addon.hpp"

namespace {

using namespace confmask;
namespace fs = std::filesystem;

int usage() {
  std::fprintf(stderr,
               "usage: confmask_cli <input-dir> <output-dir> [--kr N] "
               "[--kh N] [--p FLOAT] [--seed N] [--fake-routers N] "
               "[--pii 0|1]\n"
               "       confmask_cli --demo <dir>   (write a demo network)\n");
  return 2;
}

void write_config_set(const ConfigSet& configs, const fs::path& dir) {
  fs::create_directories(dir);
  for (const auto& router : configs.routers) {
    std::ofstream(dir / (router.hostname + ".cfg")) << emit_router(router);
  }
  for (const auto& host : configs.hosts) {
    std::ofstream(dir / (host.hostname + ".cfg")) << emit_host(host);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "--demo") == 0) {
    write_config_set(make_figure2(), argv[2]);
    std::printf("wrote demo network (paper Fig 2) to %s\n", argv[2]);
    return 0;
  }
  if (argc < 3) return usage();

  ConfMaskOptions options;
  bool apply_pii = false;
  for (int i = 3; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--kr") == 0) {
      options.k_r = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--kh") == 0) {
      options.k_h = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--p") == 0) {
      options.noise_p = std::atof(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      options.seed = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--fake-routers") == 0) {
      options.fake_routers = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--pii") == 0) {
      apply_pii = std::atoi(argv[i + 1]) != 0;
    } else {
      return usage();
    }
  }

  // Ingest.
  ConfigSet original;
  for (const auto& entry : fs::directory_iterator(argv[1])) {
    if (entry.path().extension() != ".cfg") continue;
    std::ifstream in(entry.path());
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    try {
      if (looks_like_host(text)) {
        original.hosts.push_back(parse_host(text));
      } else {
        original.routers.push_back(parse_router(text));
      }
    } catch (const ConfigParseError& error) {
      std::fprintf(stderr, "%s: %s\n", entry.path().c_str(), error.what());
      return 1;
    }
  }
  if (original.routers.empty()) {
    std::fprintf(stderr, "no router configurations found in %s\n", argv[1]);
    return 1;
  }
  std::printf("read %zu routers, %zu hosts from %s\n",
              original.routers.size(), original.hosts.size(), argv[1]);

  // Anonymize + verify.
  const auto result = run_confmask(original, options);
  std::printf("k_R=%d k_H=%d p=%.2f seed=%llu: +%zu fake links, +%zu fake "
              "hosts, +%zu lines, %d filters, %.2fs (%llu simulations)\n",
              options.k_r, options.k_h, options.noise_p,
              static_cast<unsigned long long>(options.seed),
              result.stats.fake_intra_links + result.stats.fake_inter_links,
              result.stats.fake_hosts, result.stats.added_lines(),
              result.stats.equivalence_filters + result.stats.anonymity_filters,
              result.stats.seconds,
              static_cast<unsigned long long>(result.stats.simulations));
  if (!result.equivalence_converged || !result.functionally_equivalent) {
    std::fprintf(stderr,
                 "functional-equivalence verification FAILED; refusing to "
                 "write output\n");
    return 1;
  }

  ConfigSet published = result.anonymized;
  if (apply_pii) {
    PiiOptions pii_options;
    pii_options.key = options.seed ^ 0x9E3779B97F4A7C15ULL;
    auto pii = apply_pii_addon(published, pii_options);
    published = std::move(pii.configs);
    std::printf("PII add-on: renumbered addresses, renamed %zu devices, "
                "hashed %zu AS numbers, scrubbed %d secret lines\n",
                pii.device_names.size(), pii.as_numbers.size(),
                pii.scrubbed_lines);
  }
  write_config_set(published, argv[2]);
  std::printf("functional equivalence verified; anonymized configs written "
              "to %s\n",
              argv[2]);
  std::printf("topology k-anonymity: %d; route anonymity N_r: %.2f avg\n",
              topology_min_degree_class_two_level(result.anonymized),
              route_anonymity_nr(result.anonymized_dp).average);
  return 0;
}
