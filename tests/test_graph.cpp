#include "src/graph/graph.hpp"

#include <gtest/gtest.h>

namespace confmask {
namespace {

Graph triangle_plus_tail() {
  // 0-1-2 triangle, 3 hanging off 2.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  return g;
}

TEST(Graph, AddEdgeRejectsSelfLoopsAndDuplicates) {
  Graph g(3);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(1, 0));
  EXPECT_FALSE(g.add_edge(2, 2));
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Graph, DegreesAndEdges) {
  const auto g = triangle_plus_tail();
  EXPECT_EQ(g.degrees(), (std::vector<int>{2, 2, 3, 1}));
  const auto edges = g.edges();
  EXPECT_EQ(edges.size(), 4u);
  for (const auto& [u, v] : edges) EXPECT_LT(u, v);
}

TEST(Graph, AddNode) {
  Graph g(2);
  EXPECT_EQ(g.add_node(), 2);
  EXPECT_EQ(g.node_count(), 3);
  EXPECT_EQ(g.degree(2), 0);
}

TEST(Graph, Connectivity) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.connected());
  g.add_edge(1, 2);
  EXPECT_TRUE(g.connected());
  EXPECT_TRUE(Graph(0).connected());
  EXPECT_TRUE(Graph(1).connected());
}

TEST(Graph, BfsDistances) {
  const auto g = triangle_plus_tail();
  const auto dist = g.bfs_distances(0);
  EXPECT_EQ(dist, (std::vector<int>{0, 1, 1, 2}));

  Graph disconnected(3);
  disconnected.add_edge(0, 1);
  EXPECT_EQ(disconnected.bfs_distances(0)[2], -1);
}

TEST(ClusteringCoefficient, KnownValues) {
  // Triangle: every node has CC 1.
  Graph triangle(3);
  triangle.add_edge(0, 1);
  triangle.add_edge(1, 2);
  triangle.add_edge(0, 2);
  EXPECT_DOUBLE_EQ(clustering_coefficient(triangle), 1.0);

  // Star: no closed triples at all.
  Graph star(4);
  star.add_edge(0, 1);
  star.add_edge(0, 2);
  star.add_edge(0, 3);
  EXPECT_DOUBLE_EQ(clustering_coefficient(star), 0.0);

  // Triangle + tail: nodes 0,1 have CC 1; node 2 has CC 1/3; node 3 has 0.
  EXPECT_NEAR(clustering_coefficient(triangle_plus_tail()),
              (1.0 + 1.0 + 1.0 / 3.0 + 0.0) / 4.0, 1e-12);
}

TEST(DegreeAnonymity, MinSameDegreeClass) {
  // Degrees {2,2,3,1}: classes of size 2, 1, 1 -> min 1.
  EXPECT_EQ(min_same_degree_class(triangle_plus_tail()), 1);

  Graph square(4);
  square.add_edge(0, 1);
  square.add_edge(1, 2);
  square.add_edge(2, 3);
  square.add_edge(3, 0);
  EXPECT_EQ(min_same_degree_class(square), 4);
  EXPECT_TRUE(is_k_degree_anonymous(square, 4));
  EXPECT_FALSE(is_k_degree_anonymous(square, 5));
}

TEST(DegreeAnonymity, EmptyGraph) {
  EXPECT_EQ(min_same_degree_class(Graph(0)), 0);
}

}  // namespace
}  // namespace confmask
