// Parser/emitter round-trip tests: parse(emit(x)) must reproduce x exactly
// for every construct the model knows, and unknown lines must survive
// verbatim (the property the §2.3 QoS case study depends on).
#include <gtest/gtest.h>

#include <algorithm>

#include "src/config/emit.hpp"
#include "src/config/parse.hpp"
#include "src/core/pipeline_runner.hpp"
#include "src/netgen/networks.hpp"

namespace confmask {
namespace {

TEST(RoundTrip, EmitParseEmitIsIdentityOnEvaluationNetworks) {
  for (const auto& network : evaluation_networks()) {
    for (const auto& router : network.configs.routers) {
      const auto text = emit_router(router);
      const auto reparsed = parse_router(text);
      EXPECT_EQ(emit_router(reparsed), text)
          << network.id << " router " << router.hostname;
    }
    for (const auto& host : network.configs.hosts) {
      const auto text = emit_host(host);
      const auto reparsed = parse_host(text);
      EXPECT_EQ(emit_host(reparsed), text)
          << network.id << " host " << host.hostname;
    }
  }
}

TEST(RoundTrip, UnknownLinesSurviveVerbatim) {
  // The QoS configuration of the paper's Listing 1 — none of these lines
  // are modeled, all must pass through.
  const char* text =
      "hostname c2\n"
      "!\n"
      "interface Ethernet0\n"
      " ip address 10.25.17.24 255.255.255.254\n"
      " description to-AGG3-1\n"
      " traffic-policy mark_agg31_high_priority inbound\n"
      "!\n"
      "traffic classifier is_mgmt_traffic\n"
      "if-match any\n"
      "traffic behavior remark_mgmt_dscp\n"
      "remark dscp af31\n";
  const auto router = parse_router(text);
  ASSERT_EQ(router.interfaces.size(), 1u);
  EXPECT_EQ(router.interfaces[0].extra_lines.size(), 1u);
  EXPECT_EQ(router.interfaces[0].extra_lines[0],
            "traffic-policy mark_agg31_high_priority inbound");
  EXPECT_EQ(router.extra_lines.size(), 4u);

  const auto reemitted = emit_router(router);
  EXPECT_NE(reemitted.find("traffic-policy mark_agg31_high_priority inbound"),
            std::string::npos);
  EXPECT_NE(reemitted.find("remark dscp af31"), std::string::npos);
}

TEST(RoundTrip, ParsesFiltersAndBgp) {
  const char* text =
      "hostname r2\n"
      "interface Ethernet0\n"
      " ip address 10.0.9.1 255.255.255.254\n"
      "router bgp 20\n"
      " network 10.128.0.0 mask 255.255.255.0\n"
      " neighbor 10.0.9.0 remote-as 10\n"
      " neighbor 10.0.9.0 prefix-list RejPfxs in\n"
      "router ospf 1\n"
      " network 10.0.1.0 0.0.0.1 area 0\n"
      " distribute-list prefix CMF_Ethernet1 in Ethernet1\n"
      "ip prefix-list RejPfxs seq 5 deny 10.128.1.0/24\n"
      "ip prefix-list RejPfxs seq 10 permit 0.0.0.0/0 le 32\n";
  const auto router = parse_router(text);
  ASSERT_TRUE(router.bgp.has_value());
  EXPECT_EQ(router.bgp->local_as, 20);
  ASSERT_EQ(router.bgp->neighbors.size(), 1u);
  EXPECT_EQ(router.bgp->neighbors[0].remote_as, 10);
  ASSERT_EQ(router.bgp->neighbors[0].prefix_lists_in.size(), 1u);
  EXPECT_EQ(router.bgp->neighbors[0].prefix_lists_in[0], "RejPfxs");
  ASSERT_TRUE(router.ospf.has_value());
  ASSERT_EQ(router.ospf->distribute_lists.size(), 1u);
  EXPECT_EQ(router.ospf->distribute_lists[0].interface, "Ethernet1");
  ASSERT_EQ(router.prefix_lists.size(), 1u);
  EXPECT_EQ(router.prefix_lists[0].entries.size(), 2u);
  EXPECT_FALSE(router.prefix_lists[0].permits(
      *Ipv4Prefix::parse("10.128.1.0/24")));
  EXPECT_TRUE(router.prefix_lists[0].permits(
      *Ipv4Prefix::parse("10.128.2.0/24")));
}

TEST(RoundTrip, ParserErrors) {
  EXPECT_THROW((void)parse_router("interface E0\n ip address 10.0.0.1 "
                                  "255.0.255.0\n"),
               ConfigParseError);
  EXPECT_THROW((void)parse_router("router ospf x\n"), ConfigParseError);
  EXPECT_THROW(
      (void)parse_router("ip prefix-list L seq 5 frobnicate 10.0.0.0/8\n"),
      ConfigParseError);
  EXPECT_THROW((void)parse_router("router bgp 10\n neighbor 10.0.0.1 "
                                  "prefix-list L in\n"),
               ConfigParseError);  // filter for unknown neighbor
  EXPECT_THROW((void)parse_host("hostname h1\n"), ConfigParseError);
}

TEST(RoundTrip, ParseErrorCarriesLineNumber) {
  try {
    (void)parse_router("hostname r1\nrouter ospf 1\n network 10.0.0.0 "
                       "0.0.255.0 area 0\n");
    FAIL() << "expected ConfigParseError";
  } catch (const ConfigParseError& error) {
    EXPECT_EQ(error.line_number(), 3u);
  }
}

TEST(CanonicalBundle, EmitParseEmitIsByteStable) {
  // The serving layer's cache keys hash this bundle; emit → parse → emit
  // must be the identity on the bytes for every evaluation network.
  for (const auto& network : evaluation_networks()) {
    const std::string text = canonical_config_set_text(network.configs);
    const ConfigSet reparsed = parse_config_set(text);
    EXPECT_EQ(reparsed.routers.size(), network.configs.routers.size())
        << network.id;
    EXPECT_EQ(reparsed.hosts.size(), network.configs.hosts.size())
        << network.id;
    EXPECT_EQ(canonical_config_set_text(reparsed), text) << network.id;
  }
}

TEST(CanonicalBundle, DeviceOrderDoesNotAffectCanonicalText) {
  ConfigSet forward = make_figure2();
  ConfigSet reversed = forward;
  std::reverse(reversed.routers.begin(), reversed.routers.end());
  std::reverse(reversed.hosts.begin(), reversed.hosts.end());
  EXPECT_EQ(canonical_config_set_text(forward),
            canonical_config_set_text(reversed));
  // canonicalize() itself sorts by hostname.
  const ConfigSet canonical = canonicalize(reversed);
  for (std::size_t i = 1; i < canonical.routers.size(); ++i) {
    EXPECT_LT(canonical.routers[i - 1].hostname,
              canonical.routers[i].hostname);
  }
}

TEST(CanonicalBundle, AnonymizedOutputRoundTrips) {
  // Cached artifacts are canonical bundles of ANONYMIZED configs (fake
  // routers, fake hosts, injected filters included); those must round-trip
  // byte-stably too or cache replay would corrupt them.
  ConfMaskOptions options;
  options.k_r = 2;
  options.k_h = 2;
  const auto guarded = run_pipeline_guarded(make_figure2(), options);
  ASSERT_TRUE(guarded.ok());
  const std::string text =
      canonical_config_set_text(guarded.result->anonymized);
  const ConfigSet reparsed = parse_config_set(text);
  EXPECT_EQ(canonical_config_set_text(reparsed), text);
}

TEST(CanonicalBundle, ParseRejectsMalformedBundles) {
  EXPECT_THROW(parse_config_set("hostname r0\n"), ConfigParseError);
  EXPECT_THROW(parse_config_set(""), ConfigParseError);
  EXPECT_THROW(parse_config_set("!>> device \nhostname r0\n"),
               ConfigParseError);
  // Content before the first device marker.
  EXPECT_THROW(
      parse_config_set("hostname stray\n!>> device r0\nhostname r0\n"),
      ConfigParseError);
  // Duplicate device names.
  const std::string dup =
      "!>> device r0\nhostname r0\n!>> device r0\nhostname r0\n";
  EXPECT_THROW(parse_config_set(dup), ConfigParseError);
}

TEST(RoundTrip, HostConfig) {
  const auto network = make_figure2();
  ASSERT_FALSE(network.hosts.empty());
  const auto& host = network.hosts[0];
  const auto reparsed = parse_host(emit_host(host));
  EXPECT_EQ(reparsed.hostname, host.hostname);
  EXPECT_EQ(reparsed.address, host.address);
  EXPECT_EQ(reparsed.gateway, host.gateway);
  EXPECT_TRUE(looks_like_host(emit_host(host)));
  EXPECT_FALSE(looks_like_host(emit_router(network.routers[0])));
}

}  // namespace
}  // namespace confmask
