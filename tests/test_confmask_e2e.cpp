// End-to-end properties of the full ConfMask pipeline on the paper's
// evaluation networks: functional equivalence (the headline guarantee),
// k-anonymity of topology and routes, and the only-append configuration
// invariant.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "src/config/emit.hpp"
#include "src/core/confmask.hpp"
#include "src/core/metrics.hpp"
#include "src/netgen/networks.hpp"
#include "src/util/strings.hpp"

namespace confmask {
namespace {

/// Multiset of non-separator configuration lines.
std::map<std::string, int> line_multiset(const std::string& text) {
  std::map<std::string, int> lines;
  for (const auto line : split(text, '\n')) {
    const auto body = trim(line);
    if (!body.empty() && body != "!") ++lines[std::string(body)];
  }
  return lines;
}

/// True if every line of `original` appears at least as often in `super`.
bool lines_contained(const std::string& original, const std::string& super) {
  const auto orig = line_multiset(original);
  const auto sup = line_multiset(super);
  for (const auto& [line, count] : orig) {
    const auto it = sup.find(line);
    if (it == sup.end() || it->second < count) return false;
  }
  return true;
}

/// The k actually achievable by per-AS anonymization: capped by the
/// smallest AS size (and AS count for the supergraph level).
int achievable_k(const ConfigSet& configs, int k_r) {
  std::map<int, int> as_sizes;
  for (const auto& router : configs.routers) {
    ++as_sizes[router.bgp ? router.bgp->local_as : -1];
  }
  int k = k_r;
  for (const auto& [as_number, size] : as_sizes) k = std::min(k, size);
  if (as_sizes.size() > 1) {
    k = std::min(k, static_cast<int>(as_sizes.size()));
  }
  return k;
}

class ConfMaskE2E : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ConfMaskE2E, DefaultParameters) {
  const auto networks = evaluation_networks();
  const auto& network = networks[GetParam()];
  ConfMaskOptions options;
  options.k_r = 6;
  options.k_h = 2;
  options.seed = 0xC0FFEE + GetParam();

  const auto result = run_confmask(network.configs, options);

  // The headline guarantee: route equivalence verified by simulation.
  EXPECT_TRUE(result.equivalence_converged) << network.name;
  EXPECT_TRUE(result.functionally_equivalent) << network.name;
  EXPECT_DOUBLE_EQ(
      DataPlane::exactly_kept_fraction(
          result.original_dp,
          result.anonymized_dp),
      1.0)
      << network.name;

  // Topology anonymity (two-level for BGP networks, §4.2).
  EXPECT_GE(topology_min_degree_class_two_level(result.anonymized),
            achievable_k(network.configs, options.k_r))
      << network.name;

  // Route anonymity: k_H companions per (ingress, egress) pair.
  EXPECT_GE(min_route_companions(result.anonymized_dp), options.k_h)
      << network.name;
  EXPECT_EQ(result.stats.fake_hosts,
            static_cast<std::size_t>(options.k_h - 1) *
                network.configs.hosts.size());

  // Only-append invariant: every original configuration line survives.
  for (const auto& router : network.configs.routers) {
    const auto* anonymized = result.anonymized.find_router(router.hostname);
    ASSERT_NE(anonymized, nullptr);
    EXPECT_TRUE(
        lines_contained(emit_router(router), emit_router(*anonymized)))
        << network.name << " router " << router.hostname;
  }
  for (const auto& host : network.configs.hosts) {
    const auto* kept = result.anonymized.find_host(host.hostname);
    ASSERT_NE(kept, nullptr) << network.name << " host " << host.hostname;
  }

  // Line accounting is self-consistent and U_C is sane.
  EXPECT_EQ(result.stats.added_lines(),
            result.stats.anonymized_lines.total() -
                result.stats.original_lines.total());
  const double uc = config_utility(result.stats.original_lines,
                                   result.stats.anonymized_lines);
  EXPECT_GT(uc, 0.0) << network.name;
  EXPECT_LT(uc, 1.0) << network.name;

  // Paper §5.4: iterations bounded by the number of fake links (+1 clean
  // verification round).
  EXPECT_LE(result.stats.equivalence_iterations,
            static_cast<int>(result.stats.fake_intra_links +
                             result.stats.fake_inter_links) +
                1)
      << network.name;
}

INSTANTIATE_TEST_SUITE_P(AllNetworks, ConfMaskE2E,
                         ::testing::Range<std::size_t>(0, 8));

struct ParamCase {
  std::size_t network;
  int k_r;
  int k_h;
};

class ConfMaskParamSweep : public ::testing::TestWithParam<ParamCase> {};

TEST_P(ConfMaskParamSweep, EquivalenceHoldsAcrossParameters) {
  const auto networks = evaluation_networks();
  const auto& network = networks[GetParam().network];
  ConfMaskOptions options;
  options.k_r = GetParam().k_r;
  options.k_h = GetParam().k_h;
  options.seed = 7;

  const auto result = run_confmask(network.configs, options);
  EXPECT_TRUE(result.functionally_equivalent)
      << network.name << " k_r=" << options.k_r << " k_h=" << options.k_h;
  EXPECT_GE(min_route_companions(result.anonymized_dp), options.k_h);
  EXPECT_GE(topology_min_degree_class_two_level(result.anonymized),
            achievable_k(network.configs, options.k_r));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConfMaskParamSweep,
    ::testing::Values(ParamCase{0, 2, 2}, ParamCase{0, 10, 4},
                      ParamCase{1, 10, 2}, ParamCase{2, 2, 6},
                      ParamCase{3, 2, 2}, ParamCase{4, 6, 2},
                      ParamCase{6, 10, 6}, ParamCase{6, 2, 4}),
    [](const ::testing::TestParamInfo<ParamCase>& info) {
      std::ostringstream name;
      name << "net" << info.param.network << "_kr" << info.param.k_r << "_kh"
           << info.param.k_h;
      return name.str();
    });

TEST(ConfMaskE2EDeterminism, SameSeedSameOutput) {
  const auto configs = make_enterprise();
  ConfMaskOptions options;
  options.seed = 99;
  const auto a = run_confmask(configs, options);
  const auto b = run_confmask(configs, options);
  ASSERT_EQ(a.anonymized.routers.size(), b.anonymized.routers.size());
  for (std::size_t i = 0; i < a.anonymized.routers.size(); ++i) {
    EXPECT_EQ(emit_router(a.anonymized.routers[i]),
              emit_router(b.anonymized.routers[i]));
  }
  EXPECT_EQ(a.anonymized_dp, b.anonymized_dp);
}

TEST(ConfMaskE2EDeterminism, DifferentSeedsDifferentFakeTopology) {
  const auto configs = make_bics();
  ConfMaskOptions options;
  options.seed = 1;
  const auto a = run_confmask(configs, options);
  options.seed = 2;
  const auto b = run_confmask(configs, options);
  bool any_different = false;
  for (std::size_t i = 0; i < a.anonymized.routers.size(); ++i) {
    if (emit_router(a.anonymized.routers[i]) !=
        emit_router(b.anonymized.routers[i])) {
      any_different = true;
      break;
    }
  }
  EXPECT_TRUE(any_different);
  // But both are functionally equivalent to the original.
  EXPECT_TRUE(a.functionally_equivalent);
  EXPECT_TRUE(b.functionally_equivalent);
}

}  // namespace
}  // namespace confmask
