// The simulation engine's worker pool: every index runs exactly once,
// results match the serial loop for any worker count, exceptions
// propagate, nested calls run inline, and the CONFMASK_JOBS policy holds.
// The hammer tests double as the ThreadSanitizer workload in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/util/thread_pool.hpp"

namespace confmask {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (const unsigned workers : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(workers);
    std::vector<int> hits(1000, 0);
    // Disjoint slots: each index owns hits[i].
    pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000)
        << "workers=" << workers;
    for (const int hit : hits) ASSERT_EQ(hit, 1);
  }
}

TEST(ThreadPool, MoreWorkersThanItems) {
  ThreadPool pool(8);
  std::vector<int> hits(3, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
}

TEST(ThreadPool, EmptyAndSingletonBatches) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
  pool.parallel_for(1, [&](std::size_t i) {
    called = true;
    EXPECT_EQ(i, 0u);
  });
  EXPECT_TRUE(called);
}

TEST(ThreadPool, SumMatchesSerial) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  const std::size_t n = 10000;
  pool.parallel_for(n, [&](std::size_t i) {
    sum.fetch_add(static_cast<long>(i) * static_cast<long>(i),
                  std::memory_order_relaxed);
  });
  long expected = 0;
  for (std::size_t i = 0; i < n; ++i) {
    expected += static_cast<long>(i) * static_cast<long>(i);
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPool, SingleWorkerPoolRunsInOrder) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.parallel_for(64, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 64u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The batch drained and the pool accepts new work afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(50, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, NestedCallsRunInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, HammerRepeatedBatches) {
  // Many small batches back to back: the generation handshake and the
  // done-notification must never lose a worker or an index (this is the
  // test TSan watches).
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(64, [&](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(count.load(), 64);
  }
}

TEST(ThreadPool, WorkersIncludesCaller) {
  EXPECT_EQ(ThreadPool(1).workers(), 1u);
  EXPECT_EQ(ThreadPool(4).workers(), 4u);
  EXPECT_GE(ThreadPool(0).workers(), 1u);  // default, machine-dependent
}

TEST(ThreadPool, DefaultWorkersRespectsEnvironment) {
  const char* saved = std::getenv("CONFMASK_JOBS");
  const std::string saved_value = saved != nullptr ? saved : "";

  setenv("CONFMASK_JOBS", "3", 1);
  EXPECT_EQ(ThreadPool::default_workers(), 3u);
  setenv("CONFMASK_JOBS", "9999", 1);
  EXPECT_EQ(ThreadPool::default_workers(), 256u);  // clamped
  setenv("CONFMASK_JOBS", "0", 1);
  EXPECT_GE(ThreadPool::default_workers(), 1u);  // invalid -> hardware
  setenv("CONFMASK_JOBS", "garbage", 1);
  EXPECT_GE(ThreadPool::default_workers(), 1u);

  if (saved != nullptr) {
    setenv("CONFMASK_JOBS", saved_value.c_str(), 1);
  } else {
    unsetenv("CONFMASK_JOBS");
  }
}

TEST(ThreadPool, ConcurrentExternalSubmittersEachCompleteTheirBatches) {
  // The serving layer's job workers submit parallel_for batches to the
  // SHARED pool concurrently. Batches serialize internally; every
  // submitter must still see exactly its own results. This is the
  // concurrent-submitter TSan workload.
  ThreadPool pool(4);
  constexpr int kSubmitters = 4;
  constexpr int kRounds = 50;
  std::vector<std::thread> submitters;
  std::vector<long> sums(kSubmitters, 0);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &sums, s] {
      for (int round = 0; round < kRounds; ++round) {
        std::atomic<long> sum{0};
        pool.parallel_for(64, [&](std::size_t i) {
          sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
        });
        sums[static_cast<std::size_t>(s)] += sum.load();
      }
    });
  }
  for (auto& submitter : submitters) submitter.join();
  constexpr long kPerBatch = 63 * 64 / 2;
  for (const long sum : sums) EXPECT_EQ(sum, kPerBatch * kRounds);
}

TEST(ThreadPool, ConfigureWhileSharedBatchInFlightThrows) {
  ThreadPool::configure(2);
  std::atomic<bool> release{false};
  std::atomic<bool> entered{false};
  std::thread submitter([&] {
    ThreadPool::shared().parallel_for(4, [&](std::size_t) {
      entered.store(true, std::memory_order_release);
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    });
  });
  while (!entered.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  // Replacing the pool under a live batch would strand its workers; the
  // guard turns that silent race into a loud error.
  EXPECT_THROW(ThreadPool::configure(4), std::logic_error);
  release.store(true, std::memory_order_release);
  submitter.join();
  // Quiescent again: reconfiguration is allowed.
  ThreadPool::configure(1);
  EXPECT_EQ(ThreadPool::shared().workers(), 1u);
}

TEST(ThreadPool, ConfigureResizesSharedPool) {
  ThreadPool::configure(2);
  EXPECT_EQ(ThreadPool::shared().workers(), 2u);
  std::atomic<int> count{0};
  ThreadPool::shared().parallel_for(16, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 16);
  ThreadPool::configure(1);
  EXPECT_EQ(ThreadPool::shared().workers(), 1u);
}

}  // namespace
}  // namespace confmask
