// The adversary's view: which fake-link strategies each attack defeats.
// This encodes the §3.2 narrative as executable checks.
#include "src/core/deanonymize.hpp"

#include <gtest/gtest.h>

#include "src/core/confmask.hpp"
#include "src/netgen/builder.hpp"
#include "src/netgen/networks.hpp"
#include "src/routing/simulation.hpp"

namespace confmask {
namespace {

/// Runs only Step 1 with a given cost policy, then Algorithm 1, and
/// returns the intermediate configs (no fake hosts — isolates the link
/// story).
ConfigSet stage12(const ConfigSet& original, FakeLinkCostPolicy policy,
                  int k_r = 4, std::uint64_t seed = 9) {
  ConfMaskOptions options;
  options.k_r = k_r;
  options.k_h = 1;  // no fake hosts
  options.cost_policy = policy;
  options.seed = seed;
  return run_confmask(original, options).anonymized;
}

TEST(Deanonymize, NaiveFakeLinksAreFlaggedAsUnconfigured) {
  // Simulate the §3.2 step-1 naive approach: add a bare interface pair
  // with no protocol coverage.
  auto configs = make_figure2();
  auto* r1 = configs.find_router("r1");
  auto* r4 = configs.find_router("r4");
  InterfaceConfig a;
  a.name = "Ethernet100";
  a.address = Ipv4Address::parse("172.20.0.0");
  a.prefix_length = 31;
  r1->interfaces.push_back(a);
  InterfaceConfig b = a;
  b.name = "Ethernet100";
  b.address = Ipv4Address::parse("172.20.0.1");
  r4->interfaces.push_back(b);

  const auto flagged = unconfigured_interface_links(configs);
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(*flagged.begin(), (EdgeName{"r1", "r4"}));
}

TEST(Deanonymize, ConfMaskFakeLinksAreNotUnconfigured) {
  const auto original = make_figure2();
  const auto anonymized = stage12(original, FakeLinkCostPolicy::kMinCost);
  EXPECT_TRUE(unconfigured_interface_links(anonymized).empty());
}

TEST(Deanonymize, LargeCostPolicyIsFullyExposedByZeroTraffic) {
  // §3.2 option (ii): over-priced fake links never carry traffic, so the
  // zero-traffic attack identifies every single one.
  const auto original = make_figure2();
  const auto anonymized = stage12(original, FakeLinkCostPolicy::kLarge);
  const Simulation sim(anonymized);
  const auto flagged = zero_traffic_links(anonymized, sim.extract_data_plane());
  const auto report = score_attack(original, anonymized, flagged);
  ASSERT_GT(report.fake_links, 0u);
  EXPECT_DOUBLE_EQ(report.true_positive_rate(), 1.0);
}

TEST(Deanonymize, MinCostWithFakeHostsCarriesTrafficOnFakeLinks) {
  // The full ConfMask pipeline (fake hosts included) imports traffic onto
  // fake links, so the zero-traffic attack can no longer flag them all.
  const auto original = make_bics();
  ConfMaskOptions options;
  options.k_r = 6;
  options.k_h = 2;
  options.seed = 13;
  const auto result = run_confmask(original, options);
  ASSERT_TRUE(result.functionally_equivalent);

  const auto flagged =
      zero_traffic_links(result.anonymized, result.anonymized_dp);
  const auto cm = score_attack(original, result.anonymized, flagged);

  // Compare with the large-cost ablation on the same network.
  ConfMaskOptions large = options;
  large.cost_policy = FakeLinkCostPolicy::kLarge;
  const auto large_result = run_confmask(original, large);
  const auto large_flagged =
      zero_traffic_links(large_result.anonymized, large_result.anonymized_dp);
  const auto lc = score_attack(original, large_result.anonymized,
                               large_flagged);

  EXPECT_DOUBLE_EQ(lc.true_positive_rate(), 1.0);
  EXPECT_LT(cm.true_positive_rate(), lc.true_positive_rate());
}

TEST(Deanonymize, ScoreAttackSeparatesRealAndFake) {
  const auto original = make_figure2();
  const auto anonymized = stage12(original, FakeLinkCostPolicy::kMinCost);
  // Flag one real and (up to) all fake edges.
  std::set<EdgeName> flagged{{"r1", "r2"}};
  const auto report = score_attack(original, anonymized, flagged);
  EXPECT_EQ(report.flagged_real, 1u);
  EXPECT_EQ(report.flagged_fake, 0u);
}

TEST(Deanonymize, ReidentificationCandidatesMatchKAnonymity) {
  const auto original = make_bics();
  ConfMaskOptions options;
  options.k_r = 6;
  options.seed = 21;
  const auto result = run_confmask(original, options);
  EXPECT_GE(min_reidentification_candidates(result.anonymized), 6);
  // The original network is far more identifiable.
  EXPECT_LT(min_reidentification_candidates(original), 6);
}

TEST(Deanonymize, ZeroTrafficOnOriginalNetworkFlagsLittle) {
  // Sanity: in a real network most links carry some flow; the attack's
  // false-positive base rate is what fake links hide behind.
  const auto original = make_fattree04();
  const Simulation sim(original);
  const auto flagged = zero_traffic_links(original, sim.extract_data_plane());
  EXPECT_TRUE(flagged.empty());  // fat tree ECMP uses every link
}

}  // namespace
}  // namespace confmask
