// The determinism contract of the parallel + incremental simulation
// engine: for every evaluation network and a fixed seed, the full pipeline
// must produce bit-identical results regardless of worker count and of
// whether incremental re-simulation is on. Parallelism and caching are
// throughput devices, never semantics devices.
#include <gtest/gtest.h>

#include <string>

#include "src/config/emit.hpp"
#include "src/core/confmask.hpp"
#include "src/netgen/networks.hpp"
#include "src/util/thread_pool.hpp"

namespace confmask {
namespace {

std::string emit_all(const ConfigSet& configs) {
  std::string out;
  for (const auto& router : configs.routers) out += emit_router(router);
  for (const auto& host : configs.hosts) out += emit_host(host);
  return out;
}

PipelineResult run_with(const ConfigSet& configs, unsigned workers,
                        bool incremental) {
  ThreadPool::configure(workers);
  ConfMaskOptions options;
  options.k_r = 6;
  options.k_h = 2;
  options.noise_p = 0.1;
  options.seed = 0xC0DE;
  options.incremental_simulation = incremental;
  return run_confmask(configs, options);
}

void expect_identical(const PipelineResult& a, const PipelineResult& b,
                      const std::string& label) {
  EXPECT_TRUE(a.anonymized_dp == b.anonymized_dp) << label;
  EXPECT_TRUE(a.original_dp == b.original_dp) << label;
  EXPECT_EQ(emit_all(a.anonymized), emit_all(b.anonymized)) << label;
  EXPECT_EQ(a.functionally_equivalent, b.functionally_equivalent) << label;
  EXPECT_EQ(a.stats.equivalence_filters, b.stats.equivalence_filters)
      << label;
  EXPECT_EQ(a.stats.anonymity_filters, b.stats.anonymity_filters) << label;
  EXPECT_EQ(a.stats.anonymity_rollbacks, b.stats.anonymity_rollbacks)
      << label;
  EXPECT_EQ(a.fake_hosts, b.fake_hosts) << label;
}

class DeterminismTest : public ::testing::Test {
 protected:
  ~DeterminismTest() override {
    ThreadPool::configure(0);  // restore the default shared pool
  }
};

TEST_F(DeterminismTest, WorkerCountNeverChangesResults) {
  for (const auto& network : evaluation_networks()) {
    const auto one = run_with(network.configs, 1, true);
    const auto four = run_with(network.configs, 4, true);
    expect_identical(one, four, "network " + network.id + " jobs 1 vs 4");
    EXPECT_TRUE(one.functionally_equivalent) << network.id;
  }
}

TEST_F(DeterminismTest, IncrementalNeverChangesResults) {
  for (const auto& network : evaluation_networks()) {
    const auto fresh = run_with(network.configs, 1, false);
    const auto incremental = run_with(network.configs, 4, true);
    expect_identical(fresh, incremental,
                     "network " + network.id + " fresh vs incremental");
  }
}

TEST_F(DeterminismTest, RepeatedRunsAreBitIdentical) {
  // Same seed, same worker count: the RNG draw order must be stable under
  // the pool (all draws happen on the orchestrating thread).
  const auto networks = evaluation_networks();
  const auto& network = networks.front();
  const auto first = run_with(network.configs, 4, true);
  const auto second = run_with(network.configs, 4, true);
  expect_identical(first, second, "repeat with jobs=4");
}

}  // namespace
}  // namespace confmask
