// Deterministic fault-injection proofs of every rung of the guarded
// runner's retry/fallback ladder (acceptance criteria a–c of the
// fail-closed pipeline runner):
//   (a) reseed, then k_r relaxation, recover from injected infeasible
//       k-degree sequences;
//   (b) prefix-pool expansion recovers from injected allocator exhaustion;
//   (c) injected verification divergence makes run_pipeline_guarded fail
//       CLOSED — an error with non-empty DataPlane::diff diagnostics and no
//       anonymized configs.
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "src/core/pipeline_runner.hpp"
#include "src/graph/k_degree_anonymize.hpp"
#include "src/netgen/networks.hpp"
#include "src/util/prefix_allocator.hpp"
#include "tests/fault_injection.hpp"

namespace confmask {
namespace {

ConfMaskOptions figure2_options() {
  ConfMaskOptions options;
  options.k_r = 4;  // forces fake links on the 4-router Fig 2 network
  options.k_h = 2;
  options.seed = 7;
  return options;
}

std::vector<FallbackKind> kinds_of(const PipelineDiagnostics& diag) {
  std::vector<FallbackKind> kinds;
  for (const auto& event : diag.fallbacks) kinds.push_back(event.kind);
  return kinds;
}

// The hooks themselves: armed points fire exactly `count` times.
TEST(FaultRegistry, FiresExactlyArmedCount) {
  const ScopedFault fault(faults::kKDegreeInfeasible, 2);
  EXPECT_EQ(faults::remaining(faults::kKDegreeInfeasible), 2);
  EXPECT_TRUE(faults::fire(faults::kKDegreeInfeasible));
  EXPECT_TRUE(faults::fire(faults::kKDegreeInfeasible));
  EXPECT_FALSE(faults::fire(faults::kKDegreeInfeasible));
  EXPECT_EQ(faults::remaining(faults::kKDegreeInfeasible), 0);
  EXPECT_FALSE(faults::fire(faults::kPrefixPoolExhausted));  // un-armed
}

TEST(FaultRegistry, InjectedKDegreeFaultThrowsTypedError) {
  const ScopedFault fault(faults::kKDegreeInfeasible, 1);
  Graph graph(4);
  graph.add_edge(0, 1);
  Rng rng(1);
  EXPECT_THROW((void)k_degree_anonymize(graph, 2, rng), KDegreeError);
  // Consumed: the next call succeeds.
  EXPECT_NO_THROW((void)k_degree_anonymize(graph, 2, rng));
}

TEST(FaultRegistry, InjectedExhaustionThrowsTypedError) {
  const ScopedFault fault(faults::kPrefixPoolExhausted, 1);
  PrefixAllocator allocator;
  EXPECT_THROW((void)allocator.allocate_link(), PrefixPoolExhausted);
  EXPECT_NO_THROW((void)allocator.allocate_link());
}

// CONFMASK_FAULTS env parsing: well-formed pairs arm; malformed pairs are
// reported on stderr and skipped (previously std::atoi mapped "abc" to 0
// and dropped misspelled fault specs without a word).
TEST(FaultRegistry, EnvParsingArmsWellFormedPairs) {
  ::setenv("CONFMASK_FAULTS", "confmask.test.a=2,confmask.test.b=1", 1);
  faults::reload_env_for_testing();
  EXPECT_EQ(faults::remaining("confmask.test.a"), 2);
  EXPECT_EQ(faults::remaining("confmask.test.b"), 1);
  EXPECT_TRUE(faults::fire("confmask.test.a"));
  ::unsetenv("CONFMASK_FAULTS");
  faults::disarm_all();
}

TEST(FaultRegistry, EnvParsingRejectsMalformedPairsLoudly) {
  ::setenv("CONFMASK_FAULTS",
           "parse=abc,=3,noequals,confmask.test.ok=2,trail=2x,confmask.test."
           "zero=0,confmask.test.neg=-1",
           1);
  ::testing::internal::CaptureStderr();
  faults::reload_env_for_testing();
  const std::string stderr_text = ::testing::internal::GetCapturedStderr();
  // The one well-formed positive pair is armed...
  EXPECT_EQ(faults::remaining("confmask.test.ok"), 2);
  // ...malformed counts arm nothing...
  EXPECT_EQ(faults::remaining("parse"), 0);
  EXPECT_EQ(faults::remaining("trail"), 0);
  // ...and each malformed pair is called out by name.
  EXPECT_NE(stderr_text.find("parse=abc"), std::string::npos) << stderr_text;
  EXPECT_NE(stderr_text.find("=3"), std::string::npos);
  EXPECT_NE(stderr_text.find("noequals"), std::string::npos);
  EXPECT_NE(stderr_text.find("trail=2x"), std::string::npos);
  // Explicit zero/negative counts are valid spellings of "disarmed": no
  // arming, no warning.
  EXPECT_EQ(faults::remaining("confmask.test.zero"), 0);
  EXPECT_EQ(stderr_text.find("confmask.test.zero"), std::string::npos);
  EXPECT_EQ(stderr_text.find("confmask.test.neg"), std::string::npos);
  ::unsetenv("CONFMASK_FAULTS");
  faults::disarm_all();
}

// (a) rung 1: an injected infeasible k-degree sequence on the first run is
// recovered by reseeding.
TEST(FaultLadder, ReseedRecoversFromInfeasibleKDegree) {
  const ScopedFault fault(faults::kKDegreeInfeasible, 1);
  const auto guarded =
      run_pipeline_guarded(make_figure2(), figure2_options());
  ASSERT_TRUE(guarded.ok());
  EXPECT_EQ(guarded.diagnostics.attempts, 2);
  EXPECT_EQ(kinds_of(guarded.diagnostics),
            std::vector<FallbackKind>{FallbackKind::kReseed});
  EXPECT_NE(guarded.effective_options.seed, figure2_options().seed);
  EXPECT_TRUE(guarded.result->functionally_equivalent);
}

// (a) rung 2: when the reseed budget is spent and the fault persists, the
// ladder relaxes k_r stepwise down to the floor — and records it.
TEST(FaultLadder, RelaxesKrAfterReseedBudgetSpent) {
  const ScopedFault fault(faults::kKDegreeInfeasible, 3);
  RetryPolicy policy;
  policy.max_reseeds = 1;
  policy.k_r_floor = 2;
  policy.k_r_step = 1;

  const auto guarded =
      run_pipeline_guarded(make_figure2(), figure2_options(), policy);
  ASSERT_TRUE(guarded.ok());
  EXPECT_EQ(guarded.diagnostics.attempts, 4);
  EXPECT_EQ(kinds_of(guarded.diagnostics),
            (std::vector<FallbackKind>{FallbackKind::kReseed,
                                       FallbackKind::kRelaxKr,
                                       FallbackKind::kRelaxKr}));
  EXPECT_EQ(guarded.effective_options.k_r, 2);
  EXPECT_TRUE(guarded.result->functionally_equivalent);
}

// (a) floor: a persistent infeasibility below-floor fails closed with the
// original category.
TEST(FaultLadder, FailsClosedWhenKrFloorReached) {
  const ScopedFault fault(faults::kKDegreeInfeasible, 100);
  RetryPolicy policy;
  policy.max_reseeds = 1;
  policy.k_r_floor = 3;  // k_r 4 → 3, then no rung left

  const auto guarded =
      run_pipeline_guarded(make_figure2(), figure2_options(), policy);
  EXPECT_FALSE(guarded.ok());
  EXPECT_FALSE(guarded.result.has_value());
  EXPECT_EQ(guarded.diagnostics.stage, PipelineStage::kTopologyAnon);
  EXPECT_EQ(guarded.diagnostics.category, ErrorCategory::kInfeasibleParams);
  EXPECT_NE(guarded.diagnostics.message.find("fallback ladder exhausted"),
            std::string::npos);
}

// (b) injected allocator exhaustion is recovered by widening the pools.
TEST(FaultLadder, ExpandsPrefixPoolOnExhaustion) {
  const ScopedFault fault(faults::kPrefixPoolExhausted, 1);
  const auto guarded =
      run_pipeline_guarded(make_figure2(), figure2_options());
  ASSERT_TRUE(guarded.ok());
  EXPECT_EQ(guarded.diagnostics.attempts, 2);
  EXPECT_EQ(kinds_of(guarded.diagnostics),
            std::vector<FallbackKind>{FallbackKind::kExpandPrefixPool});
  // Default /14 link pool widened by 2 bits.
  ASSERT_TRUE(guarded.effective_options.link_pool.has_value());
  EXPECT_EQ(guarded.effective_options.link_pool->length(), 12);
  ASSERT_TRUE(guarded.effective_options.host_pool.has_value());
  EXPECT_EQ(guarded.effective_options.host_pool->length(), 10);
  EXPECT_TRUE(guarded.result->functionally_equivalent);
}

TEST(FaultLadder, FailsClosedWhenPoolExpansionBudgetSpent) {
  const ScopedFault fault(faults::kPrefixPoolExhausted, 100);
  RetryPolicy policy;
  policy.max_pool_expansions = 2;

  const auto guarded =
      run_pipeline_guarded(make_figure2(), figure2_options(), policy);
  EXPECT_FALSE(guarded.ok());
  EXPECT_EQ(guarded.diagnostics.category, ErrorCategory::kResourceExhausted);
  EXPECT_EQ(guarded.diagnostics.attempts, 3);  // initial + 2 expansions
}

// Injected route-equivalence non-convergence is recovered by escalating
// the iteration budget up the 64 → 128 → 256 ladder.
TEST(FaultLadder, EscalatesIterationsOnInjectedNonConvergence) {
  const ScopedFault fault(faults::kRouteEquivalenceNonConvergent, 1);
  const auto guarded =
      run_pipeline_guarded(make_figure2(), figure2_options());
  ASSERT_TRUE(guarded.ok());
  EXPECT_EQ(guarded.diagnostics.attempts, 2);
  EXPECT_EQ(kinds_of(guarded.diagnostics),
            std::vector<FallbackKind>{FallbackKind::kEscalateIterations});
  EXPECT_EQ(guarded.effective_options.max_equivalence_iterations, 128);
}

// (c) THE fail-closed gate: verification divergence that survives every
// retry yields an error carrying non-empty DataPlane::diff diagnostics —
// and never the anonymized configs.
TEST(FaultLadder, VerificationFailureFailsClosedWithDivergence) {
  const ScopedFault fault(faults::kVerificationDiverge, 100);
  RetryPolicy policy;
  policy.max_reseeds = 2;

  const auto guarded =
      run_pipeline_guarded(make_figure2(), figure2_options(), policy);
  EXPECT_FALSE(guarded.ok());
  EXPECT_FALSE(guarded.result.has_value());  // NO configs — fail closed
  EXPECT_EQ(guarded.diagnostics.stage, PipelineStage::kVerification);
  EXPECT_EQ(guarded.diagnostics.category, ErrorCategory::kNonConvergent);
  EXPECT_EQ(guarded.diagnostics.attempts, 1 + policy.max_reseeds);
  EXPECT_EQ(kinds_of(guarded.diagnostics),
            (std::vector<FallbackKind>{FallbackKind::kReseed,
                                       FallbackKind::kReseed}));
  // The divergence names concrete ⟨router/flow, host, next-hop⟩ triples.
  ASSERT_FALSE(guarded.diagnostics.divergence.empty());
  const auto& entry = guarded.diagnostics.divergence.front();
  EXPECT_FALSE(entry.source.empty());
  EXPECT_FALSE(entry.destination.empty());
  EXPECT_FALSE(entry.lhs_next_hops.empty() && entry.rhs_next_hops.empty() &&
               !entry.router.empty());
}

// Recovery resumes once the injected fault clears: the same divergence
// armed for exactly one run costs one reseed, then verifies.
TEST(FaultLadder, RecoversWhenDivergenceClears) {
  const ScopedFault fault(faults::kVerificationDiverge, 1);
  const auto guarded =
      run_pipeline_guarded(make_figure2(), figure2_options());
  ASSERT_TRUE(guarded.ok());
  EXPECT_EQ(guarded.diagnostics.attempts, 2);
  EXPECT_EQ(kinds_of(guarded.diagnostics),
            std::vector<FallbackKind>{FallbackKind::kReseed});
}

}  // namespace
}  // namespace confmask
