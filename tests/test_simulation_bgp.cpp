// BGP semantics: eBGP session discovery, shortest-AS-path selection,
// hot-potato egress choice via the intra-AS IGP, and per-session inbound
// prefix-list filters (the mechanism Algorithm 1 uses on fake inter-AS
// links).
#include <gtest/gtest.h>

#include "src/netgen/builder.hpp"
#include "src/netgen/networks.hpp"
#include "src/routing/simulation.hpp"

namespace confmask {
namespace {

/// Three ASes in a line: X { x1 } -- Y { y1 } -- Z { z1 }, plus a direct
/// X--Z shortcut we can filter.
ConfigSet three_as_line(bool with_shortcut) {
  NetworkBuilder builder;
  for (const auto& [name, as] :
       std::vector<std::pair<std::string, int>>{{"x1", 1}, {"y1", 2},
                                                {"z1", 3}}) {
    builder.router(name);
    builder.enable_ospf(name);
    builder.enable_bgp(name, as);
  }
  builder.ebgp_link("x1", "y1");
  builder.ebgp_link("y1", "z1");
  if (with_shortcut) builder.ebgp_link("x1", "z1");
  builder.host("hx", "x1");
  builder.host("hz", "z1");
  return builder.take();
}

TEST(SimulationBgp, ShortestAsPathWins) {
  const auto configs = three_as_line(/*with_shortcut=*/true);
  const Simulation sim(configs);
  const auto& topo = sim.topology();
  const auto paths = sim.paths(topo.find_node("hx"), topo.find_node("hz"));
  ASSERT_EQ(paths.size(), 1u);
  // Direct X--Z beats X--Y--Z.
  EXPECT_EQ(paths[0], (Path{"hx", "x1", "z1", "hz"}));
}

TEST(SimulationBgp, SessionFilterForcesLongerAsPath) {
  auto configs = three_as_line(/*with_shortcut=*/true);
  // Deny hz's prefix on x1's session towards z1.
  auto* x1 = configs.find_router("x1");
  const auto dest = configs.find_host("hz")->prefix();
  // The shortcut session is x1's second neighbor.
  ASSERT_EQ(x1->bgp->neighbors.size(), 2u);
  auto& list = x1->ensure_prefix_list("CMF_B");
  list.add_deny(dest);
  list.add_permit_all();
  x1->bgp->neighbors[1].prefix_lists_in.push_back("CMF_B");

  const Simulation sim(configs);
  const auto& topo = sim.topology();
  const auto paths = sim.paths(topo.find_node("hx"), topo.find_node("hz"));
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], (Path{"hx", "x1", "y1", "z1", "hz"}));
  // Unfiltered destinations still use the shortcut (in reverse, hz->hx).
  const auto back = sim.paths(topo.find_node("hz"), topo.find_node("hx"));
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0], (Path{"hz", "z1", "x1", "hx"}));
}

TEST(SimulationBgp, IntraAsTrafficUsesIgpOnly) {
  const auto configs = make_backbone();
  const Simulation sim(configs);
  const auto& topo = sim.topology();
  // hx2 -> hx3 stays inside AS 65201.
  const auto paths = sim.paths(topo.find_node("hx2"), topo.find_node("hx3"));
  ASSERT_FALSE(paths.empty());
  for (const auto& path : paths) {
    for (const auto& node : path) {
      EXPECT_TRUE(node[0] == 'x' || node[0] == 'h') << node;
    }
  }
}

TEST(SimulationBgp, HotPotatoPicksNearestEgress) {
  const auto configs = make_backbone();
  const Simulation sim(configs);
  const auto& topo = sim.topology();
  // AS X reaches AS Z directly via the z3--x4 session. From hx2, the
  // nearest egress is x4 (one IGP hop from x2 either way around the ring,
  // through x1 or x3 at equal cost).
  const auto paths = sim.paths(topo.find_node("hx2"), topo.find_node("hz1"));
  ASSERT_EQ(paths.size(), 2u);
  for (const auto& path : paths) {
    EXPECT_EQ(path[3], "x4");  // egress border router
    EXPECT_EQ(path[4], "z3");  // peer across the session
  }
}

TEST(SimulationBgp, AllEvaluationBgpNetworksFullyReachable) {
  for (const auto& maker :
       {make_enterprise, make_university, make_backbone}) {
    const auto configs = maker();
    const Simulation sim(configs);
    const auto& topo = sim.topology();
    const auto hosts = topo.host_ids();
    for (int src : hosts) {
      for (int dst : hosts) {
        if (src == dst) continue;
        EXPECT_FALSE(sim.paths(src, dst).empty())
            << topo.node(src).name << " -> " << topo.node(dst).name;
      }
    }
  }
}

TEST(SimulationBgp, NoSessionMeansNoInterAsRoute) {
  // Two ASes with a link but only one side configures the neighbor:
  // no session, no reachability.
  NetworkBuilder builder;
  builder.router("x1");
  builder.enable_ospf("x1");
  builder.enable_bgp("x1", 1);
  builder.router("y1");
  builder.enable_ospf("y1");
  builder.enable_bgp("y1", 2);
  builder.ebgp_link("x1", "y1");
  builder.host("hx", "x1");
  builder.host("hy", "y1");
  auto configs = builder.take();
  // Break the reciprocity: remove y1's neighbor statement.
  configs.find_router("y1")->bgp->neighbors.clear();

  const Simulation sim(configs);
  const auto& topo = sim.topology();
  EXPECT_TRUE(sim.paths(topo.find_node("hx"), topo.find_node("hy")).empty());
}

}  // namespace
}  // namespace confmask
