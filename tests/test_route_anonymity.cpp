// Step 2.2 in isolation: fake host construction and Algorithm 2's
// randomized filters with reachability rollback.
#include "src/core/route_anonymity.hpp"

#include <gtest/gtest.h>

#include <set>

#include "src/core/metrics.hpp"
#include "src/netgen/networks.hpp"
#include "src/routing/simulation.hpp"

namespace confmask {
namespace {

struct Prepared {
  ConfigSet configs;
  OriginalIndex index;
};

Prepared prepare(const ConfigSet& original) {
  const Simulation sim(original);
  return Prepared{original, OriginalIndex(sim)};
}

TEST(FakeHosts, CopiesAttachToTheSameIngressRouter) {
  auto prepared = prepare(make_figure2());
  PrefixAllocator allocator;
  for (const auto& p : prepared.configs.used_prefixes()) allocator.reserve(p);
  const auto fakes =
      add_fake_hosts(prepared.configs, prepared.index, 3, allocator);
  EXPECT_EQ(fakes.size(), 2u * 3u);  // 3 real hosts, 2 copies each

  const Topology topo = Topology::build(prepared.configs);
  for (const auto& host : prepared.index.real_hosts()) {
    const int real = topo.find_node(host);
    for (int copy = 1; copy <= 2; ++copy) {
      const int fake = topo.find_node(host + "_" + std::to_string(copy));
      ASSERT_GE(fake, 0);
      EXPECT_EQ(topo.gateway_of(fake), topo.gateway_of(real)) << host;
    }
  }
}

TEST(FakeHosts, FreshPrefixesOutsideOriginalSpace) {
  auto prepared = prepare(make_bics());
  PrefixAllocator allocator;
  for (const auto& p : prepared.configs.used_prefixes()) allocator.reserve(p);
  const auto originals = prepared.configs.used_prefixes();
  const auto fakes =
      add_fake_hosts(prepared.configs, prepared.index, 2, allocator);

  std::set<std::string> fake_set(fakes.begin(), fakes.end());
  for (const auto& host : prepared.configs.hosts) {
    if (fake_set.count(host.hostname) == 0) continue;
    for (const auto& original : originals) {
      EXPECT_FALSE(original.overlaps(host.prefix()))
          << host.hostname << " overlaps " << original.str();
    }
  }
}

TEST(FakeHosts, CoveredByGatewayProtocols) {
  auto prepared = prepare(make_enterprise());
  PrefixAllocator allocator;
  for (const auto& p : prepared.configs.used_prefixes()) allocator.reserve(p);
  const auto fakes =
      add_fake_hosts(prepared.configs, prepared.index, 2, allocator);
  const Topology topo = Topology::build(prepared.configs);
  for (const auto& name : fakes) {
    const auto* fake = prepared.configs.find_host(name);
    ASSERT_NE(fake, nullptr);
    const int node = topo.find_node(name);
    const int gateway = topo.gateway_of(node);
    ASSERT_GE(gateway, 0);
    const auto& router = prepared.configs.routers[static_cast<std::size_t>(
        topo.node(gateway).config_index)];
    EXPECT_TRUE(router.ospf->covers(fake->address)) << name;
    // BGP gateways must also advertise the fake LAN.
    bool advertised = false;
    for (const auto& network : router.bgp->networks) {
      if (network.contains(fake->address)) advertised = true;
    }
    EXPECT_TRUE(advertised) << name;
  }
}

TEST(FakeHosts, KhOneAddsNothing) {
  auto prepared = prepare(make_figure2());
  PrefixAllocator allocator;
  const auto fakes =
      add_fake_hosts(prepared.configs, prepared.index, 1, allocator);
  EXPECT_TRUE(fakes.empty());
  EXPECT_EQ(prepared.configs.hosts.size(), 3u);
}

TEST(Algorithm2, ZeroNoiseAddsNoFilters) {
  auto prepared = prepare(make_figure2());
  PrefixAllocator allocator;
  for (const auto& p : prepared.configs.used_prefixes()) allocator.reserve(p);
  const auto fakes =
      add_fake_hosts(prepared.configs, prepared.index, 2, allocator);
  Rng rng(5);
  const auto outcome = anonymize_routes(prepared.configs, fakes, 0.0, rng);
  EXPECT_EQ(outcome.filters_added, 0);
  EXPECT_EQ(outcome.filters_rolled_back, 0);
}

TEST(Algorithm2, PreservesFakeHostReachabilityEverywhere) {
  auto prepared = prepare(make_fattree04());
  PrefixAllocator allocator;
  for (const auto& p : prepared.configs.used_prefixes()) allocator.reserve(p);
  const auto fakes =
      add_fake_hosts(prepared.configs, prepared.index, 2, allocator);
  Rng rng(17);
  // Aggressive noise to force rollbacks.
  const auto outcome = anonymize_routes(prepared.configs, fakes, 0.8, rng);
  EXPECT_GT(outcome.filters_added, 0);

  const Simulation sim(prepared.configs);
  const Topology& topo = sim.topology();
  for (const auto& name : fakes) {
    const int fake = topo.find_node(name);
    for (int r = 0; r < topo.router_count(); ++r) {
      EXPECT_TRUE(sim.reaches(r, fake))
          << topo.node(r).name << " lost " << name;
    }
  }
}

TEST(Algorithm2, RealFlowsAreUntouched) {
  auto prepared = prepare(make_university());
  PrefixAllocator allocator;
  for (const auto& p : prepared.configs.used_prefixes()) allocator.reserve(p);
  const auto fakes =
      add_fake_hosts(prepared.configs, prepared.index, 3, allocator);

  const DataPlane before = [&] {
    const Simulation sim(prepared.configs);
    return sim.extract_data_plane().restricted_to(prepared.index.real_hosts());
  }();

  Rng rng(23);
  (void)anonymize_routes(prepared.configs, fakes, 0.5, rng);

  const DataPlane after = [&] {
    const Simulation sim(prepared.configs);
    return sim.extract_data_plane().restricted_to(prepared.index.real_hosts());
  }();
  EXPECT_EQ(before, after);
}

TEST(Algorithm2, NoiseDivertsSomeFakeFlows) {
  // With enough noise, at least one fake host's paths differ from its
  // original's paths — that divergence is what creates route anonymity.
  auto prepared = prepare(make_fattree04());
  PrefixAllocator allocator;
  for (const auto& p : prepared.configs.used_prefixes()) allocator.reserve(p);
  const auto fakes =
      add_fake_hosts(prepared.configs, prepared.index, 2, allocator);
  Rng rng(29);
  (void)anonymize_routes(prepared.configs, fakes, 0.5, rng);

  const Simulation sim(prepared.configs);
  const Topology& topo = sim.topology();
  bool any_divergence = false;
  for (const auto& real_name : prepared.index.real_hosts()) {
    const int real = topo.find_node(real_name);
    const int fake = topo.find_node(real_name + "_1");
    for (const auto& other_name : prepared.index.real_hosts()) {
      if (other_name == real_name) continue;
      const int other = topo.find_node(other_name);
      const auto real_paths = sim.node_paths(other, real);
      const auto fake_paths = sim.node_paths(other, fake);
      // Compare interior router sequences.
      std::set<std::vector<int>> real_interiors;
      std::set<std::vector<int>> fake_interiors;
      for (const auto& p : real_paths) {
        real_interiors.insert({p.begin() + 1, p.end() - 1});
      }
      for (const auto& p : fake_paths) {
        fake_interiors.insert({p.begin() + 1, p.end() - 1});
      }
      if (real_interiors != fake_interiors) any_divergence = true;
    }
  }
  EXPECT_TRUE(any_divergence);
}

}  // namespace
}  // namespace confmask
