// The §4.3 strawman baselines: both must also restore functional
// equivalence, but strawman 1 injects far more filter lines (unified
// pattern) and strawman 2 needs far more simulation jobs (Fig 10 / 16).
#include "src/core/strawman.hpp"

#include <gtest/gtest.h>

#include "src/core/confmask.hpp"
#include "src/netgen/networks.hpp"
#include "src/routing/simulation.hpp"

namespace confmask {
namespace {

class StrawmanEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StrawmanEquivalence, AllStrategiesRestoreTheDataPlane) {
  const auto networks = evaluation_networks();
  const auto& network = networks[GetParam()];
  ConfMaskOptions options;
  options.seed = 31;

  for (const auto strategy :
       {EquivalenceStrategy::kConfMask, EquivalenceStrategy::kStrawman1,
        EquivalenceStrategy::kStrawman2}) {
    const auto result = run_pipeline(network.configs, options, strategy);
    EXPECT_TRUE(result.functionally_equivalent)
        << network.name << " strategy " << static_cast<int>(strategy);
  }
}

// Networks A, C, D, G cover BGP small, BGP ring, ISP, and fat-tree shapes.
INSTANTIATE_TEST_SUITE_P(SmallNetworks, StrawmanEquivalence,
                         ::testing::Values(0u, 2u, 3u, 6u));

TEST(Strawman, Strawman1InjectsMoreFilterLinesThanConfMask) {
  const auto configs = make_bics();
  ConfMaskOptions options;
  options.seed = 37;
  const auto cm = run_confmask(configs, options);
  const auto s1 = run_strawman1(configs, options);
  EXPECT_GT(s1.stats.anonymized_lines.filter, cm.stats.anonymized_lines.filter);
}

TEST(Strawman, Strawman2NeedsMoreSimulationsThanConfMask) {
  const auto configs = make_bics();
  ConfMaskOptions options;
  options.seed = 41;
  const auto cm = run_confmask(configs, options);
  const auto s2 = run_strawman2(configs, options);
  EXPECT_TRUE(s2.functionally_equivalent);
  EXPECT_GT(s2.stats.equivalence_iterations,
            cm.stats.equivalence_iterations);
}

TEST(Strawman, Strawman1NeedsNoSimulationForFixing) {
  const auto configs = make_university();
  const Simulation sim(configs);
  OriginalIndex index(sim);
  PrefixAllocator allocator;
  for (const auto& p : configs.used_prefixes()) allocator.reserve(p);
  Rng rng(43);
  ConfigSet work = configs;
  (void)anonymize_topology(work, 6, FakeLinkCostPolicy::kMinCost, rng,
                           allocator);
  const auto runs_before = Simulation::total_runs();
  const auto outcome = strawman1_route_fix(work, index);
  EXPECT_EQ(Simulation::total_runs(), runs_before);
  EXPECT_TRUE(outcome.converged);
  EXPECT_EQ(outcome.iterations, 0);
}

TEST(Strawman, Strawman1DeniesEveryRealHostOnEveryFakeEnd) {
  const auto configs = make_figure2();
  const Simulation sim(configs);
  OriginalIndex index(sim);
  PrefixAllocator allocator;
  for (const auto& p : configs.used_prefixes()) allocator.reserve(p);
  Rng rng(47);
  ConfigSet work = configs;
  const auto topo_outcome = anonymize_topology(
      work, 4, FakeLinkCostPolicy::kMinCost, rng, allocator);
  ASSERT_GT(topo_outcome.total_links(), 0u);
  const auto outcome = strawman1_route_fix(work, index);
  // 2 ends per fake link x 3 real hosts (the unified pattern §4.3 warns
  // about).
  EXPECT_EQ(outcome.filters_added,
            static_cast<int>(topo_outcome.total_links()) * 2 * 3);
}

}  // namespace
}  // namespace confmask
