// The PII add-on: prefix preservation, consistency (the renumbered network
// simulates to the same data plane modulo renaming), and secret scrubbing.
#include "src/pii/pii_addon.hpp"

#include <gtest/gtest.h>

#include <set>

#include "src/config/emit.hpp"
#include "src/core/confmask.hpp"
#include "src/netgen/networks.hpp"
#include "src/pii/crypto_pan.hpp"
#include "src/routing/simulation.hpp"

namespace confmask {
namespace {

TEST(CryptoPan, IsDeterministic) {
  const PrefixPreservingAnonymizer a(42);
  const PrefixPreservingAnonymizer b(42);
  const auto addr = *Ipv4Address::parse("10.1.2.3");
  EXPECT_EQ(a.anonymize(addr), b.anonymize(addr));
  const PrefixPreservingAnonymizer c(43);
  EXPECT_NE(a.anonymize(addr), c.anonymize(addr));
}

TEST(CryptoPan, CommonPrefixLength) {
  EXPECT_EQ(common_prefix_length(*Ipv4Address::parse("10.0.0.0"),
                                 *Ipv4Address::parse("10.0.0.0")),
            32);
  EXPECT_EQ(common_prefix_length(*Ipv4Address::parse("10.0.0.0"),
                                 *Ipv4Address::parse("10.0.0.1")),
            31);
  EXPECT_EQ(common_prefix_length(*Ipv4Address::parse("0.0.0.0"),
                                 *Ipv4Address::parse("128.0.0.0")),
            0);
}

class CryptoPanProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CryptoPanProperty, PreservesCommonPrefixLengths) {
  const PrefixPreservingAnonymizer pan(GetParam());
  Rng rng(GetParam() ^ 0xABCD);
  for (int trial = 0; trial < 2000; ++trial) {
    const Ipv4Address a{static_cast<std::uint32_t>(rng.next())};
    const Ipv4Address b{static_cast<std::uint32_t>(rng.next())};
    EXPECT_EQ(common_prefix_length(pan.anonymize(a), pan.anonymize(b)),
              common_prefix_length(a, b))
        << a.str() << " vs " << b.str();
  }
}

TEST_P(CryptoPanProperty, IsInjectiveOnSamples) {
  const PrefixPreservingAnonymizer pan(GetParam());
  Rng rng(GetParam() ^ 0x1234);
  std::set<std::uint32_t> images;
  std::set<std::uint32_t> inputs;
  for (int trial = 0; trial < 5000; ++trial) {
    const std::uint32_t input = static_cast<std::uint32_t>(rng.next());
    if (!inputs.insert(input).second) continue;
    EXPECT_TRUE(
        images.insert(pan.anonymize(Ipv4Address{input}).bits()).second);
  }
}

INSTANTIATE_TEST_SUITE_P(Keys, CryptoPanProperty,
                         ::testing::Values(1u, 99u, 0xFEEDFACEu));

TEST(CryptoPan, PreservedLeadingBits) {
  const PrefixPreservingAnonymizer pan(7, /*preserved_prefix_bits=*/8);
  Rng rng(5);
  for (int trial = 0; trial < 500; ++trial) {
    const Ipv4Address addr{static_cast<std::uint32_t>(rng.next())};
    EXPECT_EQ(pan.anonymize(addr).bits() >> 24, addr.bits() >> 24);
  }
}

TEST(PiiAddon, RenumberedNetworkSimulatesIdentically) {
  // IP anonymization only (no renaming): the data plane must be EXACTLY
  // the same, because prefix preservation keeps all membership relations.
  for (const auto maker : {make_figure2, make_enterprise, make_fattree04}) {
    const auto original = maker();
    PiiOptions options;
    options.rename_devices = false;
    const auto result = apply_pii_addon(original, options);

    const Simulation before(original);
    const Simulation after(result.configs);
    EXPECT_EQ(before.extract_data_plane(), after.extract_data_plane());
  }
}

TEST(PiiAddon, RenamingKeepsStructure) {
  const auto original = make_backbone();
  const auto result = apply_pii_addon(original);
  // Same counts, all names rewritten to the neutral scheme.
  ASSERT_EQ(result.configs.routers.size(), original.routers.size());
  ASSERT_EQ(result.configs.hosts.size(), original.hosts.size());
  for (const auto& router : result.configs.routers) {
    EXPECT_EQ(router.hostname[0], 'R');
  }
  for (const auto& host : result.configs.hosts) {
    EXPECT_EQ(host.hostname[0], 'H');
  }
  // Descriptions no longer leak original peer names.
  for (const auto& router : result.configs.routers) {
    for (const auto& iface : router.interfaces) {
      EXPECT_EQ(iface.description.find("to-x"), std::string::npos);
      EXPECT_EQ(iface.description.find("to-hz"), std::string::npos);
    }
  }
  // The renamed network still simulates and is fully reachable.
  const Simulation sim(result.configs);
  EXPECT_EQ(sim.extract_data_plane().flows.size(),
            static_cast<std::size_t>(9 * 8));
}

TEST(PiiAddon, AsNumbersAreHashedConsistently) {
  const auto original = make_enterprise();
  const auto result = apply_pii_addon(original);
  EXPECT_EQ(result.as_numbers.size(), 3u);
  std::set<int> published;
  for (const auto& [from, to] : result.as_numbers) {
    EXPECT_NE(from, to);
    EXPECT_GE(to, 64512);
    EXPECT_LE(to, 65534);
    EXPECT_TRUE(published.insert(to).second) << "collision";
  }
  // Sessions still form: inter-AS flows still work.
  const Simulation sim(result.configs);
  const auto& topo = sim.topology();
  int cross_as_flows = 0;
  const auto dp = sim.extract_data_plane();
  for (const auto& [flow, paths] : dp.flows) {
    if (flow.first[1] != flow.second[1]) ++cross_as_flows;  // just count
  }
  EXPECT_EQ(dp.flows.size(), static_cast<std::size_t>(8 * 7));
  (void)topo;
  (void)cross_as_flows;
}

TEST(PiiAddon, ScrubsSecrets) {
  auto original = make_figure2();
  original.routers[0].extra_lines.push_back(
      "enable secret 5 $1$abc$REALHASH");
  original.routers[0].extra_lines.push_back(
      "snmp-server community s3cr3t RO");
  original.routers[0].extra_lines.push_back("ip cef");  // not a secret
  const auto result = apply_pii_addon(original);
  EXPECT_EQ(result.scrubbed_lines, 2);
  const auto text = emit_router(result.configs.routers[0]);
  EXPECT_EQ(text.find("REALHASH"), std::string::npos);
  EXPECT_EQ(text.find("s3cr3t"), std::string::npos);
  EXPECT_NE(text.find("ip cef"), std::string::npos);
}

TEST(PiiAddon, ComposesWithConfMask) {
  // The full paper pipeline: ConfMask then the PII add-on. The composed
  // output still simulates, is fully reachable, and contains no original
  // addresses.
  const auto original = make_university();
  ConfMaskOptions cm_options;
  cm_options.seed = 77;
  const auto confmask_result = run_confmask(original, cm_options);
  ASSERT_TRUE(confmask_result.functionally_equivalent);

  const auto pii_result = apply_pii_addon(confmask_result.anonymized);
  const Simulation sim(pii_result.configs);
  const auto& topo = sim.topology();
  for (int src : topo.host_ids()) {
    for (int dst : topo.host_ids()) {
      if (src != dst) {
        EXPECT_FALSE(sim.paths(src, dst).empty())
            << topo.node(src).name << "->" << topo.node(dst).name;
      }
    }
  }
  // No original interface address survives verbatim.
  std::set<std::uint32_t> original_addrs;
  for (const auto& router : original.routers) {
    for (const auto& iface : router.interfaces) {
      if (iface.address) original_addrs.insert(iface.address->bits());
    }
  }
  for (const auto& router : pii_result.configs.routers) {
    for (const auto& iface : router.interfaces) {
      if (iface.address) {
        EXPECT_EQ(original_addrs.count(iface.address->bits()), 0u);
      }
    }
  }
}

TEST(PiiAddon, DisabledStagesAreNoOps) {
  const auto original = make_figure2();
  PiiOptions options;
  options.anonymize_ips = false;
  options.rename_devices = false;
  options.hash_as_numbers = false;
  options.scrub_secrets = false;
  const auto result = apply_pii_addon(original, options);
  for (std::size_t i = 0; i < original.routers.size(); ++i) {
    EXPECT_EQ(emit_router(result.configs.routers[i]),
              emit_router(original.routers[i]));
  }
}

}  // namespace
}  // namespace confmask
