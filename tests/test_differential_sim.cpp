// Differential tests: the fast simulation engine against the independent
// reference oracle (src/routing/reference_sim) — on the curated paper
// networks, on a seeded random corpus, and on the repro-minimization
// machinery itself. See DESIGN.md §10 for the modeling rules the two
// engines share by contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/config/emit.hpp"
#include "src/netgen/networks.hpp"
#include "src/netgen/random_network.hpp"
#include "src/netgen/scale_families.hpp"
#include "src/routing/dataplane.hpp"
#include "src/routing/reference_sim.hpp"
#include "src/routing/simulation.hpp"
#include "src/routing/topology.hpp"
#include "src/testing/differential.hpp"

namespace confmask {
namespace {

/// FIB-level then data-plane-level agreement between the two engines.
void expect_oracle_agrees(const ConfigSet& configs, const std::string& label) {
  const Simulation fast(configs);
  const ReferenceSimulation ref(configs);
  const Topology& topo = fast.topology();
  for (int router = 0; router < topo.router_count(); ++router) {
    for (const int host : topo.host_ids()) {
      const auto& lhs = fast.fib(router, host);
      const auto& rhs = ref.fib(router, host);
      ASSERT_EQ(lhs.size(), rhs.size())
          << label << ": " << topo.node(router).name << " -> "
          << topo.node(host).name;
      for (std::size_t i = 0; i < lhs.size(); ++i) {
        EXPECT_EQ(lhs[i].link, rhs[i].link)
            << label << ": " << topo.node(router).name << " -> "
            << topo.node(host).name << " hop " << i;
        EXPECT_EQ(lhs[i].neighbor, rhs[i].neighbor)
            << label << ": " << topo.node(router).name << " -> "
            << topo.node(host).name << " hop " << i;
      }
    }
  }
  const DataPlane ref_dp = ref.extract_data_plane();
  ASSERT_FALSE(ref.last_extraction_truncated()) << label;
  const auto diff = fast.extract_data_plane().diff(ref_dp, 4);
  EXPECT_TRUE(diff.empty()) << label << ": " << diff.size()
                            << " data-plane divergence(s), first at "
                            << diff.front().source << " -> "
                            << diff.front().destination;
}

TEST(DifferentialOracle, AgreesOnFigure2) {
  expect_oracle_agrees(make_figure2(), "figure2");
}

// Acceptance gate: the oracle must agree with the fast engine on all eight
// Table-2 evaluation networks A–H (BGP+OSPF, ISP OSPF, and fat trees).
TEST(DifferentialOracle, AgreesOnAllEvaluationNetworks) {
  for (const auto& net : evaluation_networks()) {
    expect_oracle_agrees(net.configs, net.id + " (" + net.name + ")");
  }
}

// A deterministic slice of the fuzz corpus: every seed runs the full check
// ladder (oracle, incremental ≡ full after edits, jobs-1 ≡ jobs-N). The CI
// `differential` job runs the same corpus two hundred seeds deep.
TEST(DifferentialOracle, RandomCorpusAgrees) {
  DifferentialOptions options;  // empty repro_dir: tests write no artifacts
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const DifferentialResult result = run_differential_case(seed, options);
    EXPECT_TRUE(result.ok)
        << "seed " << seed << ": "
        << (result.finding
                ? result.finding->check + " — " + result.finding->detail
                : std::string{});
  }
}

// The scale families at 500 routers, decorated, through the same ladder:
// flat ≡ oracle on the FIBs and data plane, incremental ≡ full after
// random filter edits, jobs-1 ≡ jobs-N. This is where the CSR/SoA core's
// layout tricks (interned filter slots, column arenas, lazy IGP rows)
// face networks three times deeper than the curated set.
TEST(DifferentialOracle, ScaleFamilyCorpusAgrees) {
  constexpr ScaleFamily kFamilies[] = {
      ScaleFamily::kWaxman, ScaleFamily::kWaxmanRip, ScaleFamily::kMultiAs};
  DifferentialOptions options;  // empty repro_dir: tests write no artifacts
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ConfigSet configs = make_scale_network(kFamilies[seed % 3], 500, seed);
    decorate_scale_network(configs, seed);
    const DifferentialResult result =
        run_differential_checks(configs, seed, options);
    EXPECT_TRUE(result.ok)
        << "seed " << seed << " (" << scale_family_name(kFamilies[seed % 3])
        << "): "
        << (result.finding
                ? result.finding->check + " — " + result.finding->detail
                : std::string{});
  }
}

// Replaying a repro requires the seed to fully determine the decorated
// network, byte for byte.
TEST(DifferentialOracle, GenerationAndDecorationAreDeterministic) {
  const DifferentialOptions options;
  for (const std::uint64_t seed : {3ull, 11ull, 17ull}) {
    ConfigSet first = make_random_network(options.network, seed);
    decorate_random_network(first, seed, options);
    ConfigSet second = make_random_network(options.network, seed);
    decorate_random_network(second, seed, options);
    ASSERT_EQ(first.routers.size(), second.routers.size()) << seed;
    ASSERT_EQ(first.hosts.size(), second.hosts.size()) << seed;
    for (std::size_t i = 0; i < first.routers.size(); ++i) {
      EXPECT_EQ(emit_router(first.routers[i]), emit_router(second.routers[i]))
          << "seed " << seed << " router " << i;
    }
    for (std::size_t i = 0; i < first.hosts.size(); ++i) {
      EXPECT_EQ(emit_host(first.hosts[i]), emit_host(second.hosts[i]))
          << "seed " << seed << " host " << i;
    }
  }
}

// Regression (mutation test, seed 2): the greedy minimizer held a
// reference into the config set across shrink attempts, but a successful
// attempt replaces the set wholesale, so the reference dangled — a
// heap-use-after-free under ASan the moment any real divergence was being
// minimized. An always-true predicate makes every deletion "succeed" and
// walks every shrink loop through the replacement path.
TEST(DifferentialOracle, MinimizerSurvivesEveryShrinkSucceeding) {
  const DifferentialOptions options;
  ConfigSet configs = make_random_network(options.network, 2);
  decorate_random_network(configs, 2, options);
  const ConfigSet minimized = minimize_failing_config(
      std::move(configs), [](const ConfigSet&) { return true; });
  EXPECT_TRUE(minimized.routers.empty());
  EXPECT_TRUE(minimized.hosts.empty());
}

// The minimizer must keep exactly what the predicate pins and drop the
// rest (hosts go first, so none survive a router-only predicate).
TEST(DifferentialOracle, MinimizerKeepsOnlyFailureRelevantElements) {
  const DifferentialOptions options;
  ConfigSet configs = make_random_network(options.network, 7);
  decorate_random_network(configs, 7, options);
  const std::string keep = configs.routers.front().hostname;
  const ConfigSet minimized = minimize_failing_config(
      std::move(configs), [&](const ConfigSet& candidate) {
        for (const auto& router : candidate.routers) {
          if (router.hostname == keep) return true;
        }
        return false;
      });
  ASSERT_EQ(minimized.routers.size(), 1u);
  EXPECT_EQ(minimized.routers.front().hostname, keep);
  EXPECT_TRUE(minimized.hosts.empty());
  EXPECT_TRUE(minimized.routers.front().static_routes.empty());
}

}  // namespace
}  // namespace confmask
