#include "src/routing/topology.hpp"

#include <gtest/gtest.h>

#include "src/netgen/networks.hpp"

namespace confmask {
namespace {

TEST(Topology, Figure2Reconstruction) {
  const auto configs = make_figure2();
  const auto topo = Topology::build(configs);

  EXPECT_EQ(topo.router_count(), 4);
  EXPECT_EQ(topo.host_count(), 3);
  EXPECT_EQ(topo.links().size(), 7u);  // 4 router links + 3 host links
  EXPECT_EQ(topo.router_link_count(), 4u);

  const int r1 = topo.find_node("r1");
  const int r3 = topo.find_node("r3");
  const int h1 = topo.find_node("h1");
  ASSERT_GE(r1, 0);
  ASSERT_GE(r3, 0);
  ASSERT_GE(h1, 0);
  EXPECT_TRUE(topo.is_router(r1));
  EXPECT_FALSE(topo.is_router(h1));
  EXPECT_EQ(topo.gateway_of(h1), r1);
  EXPECT_EQ(topo.find_node("nope"), -1);

  const auto graph = topo.router_graph();
  EXPECT_EQ(graph.node_count(), 4);
  EXPECT_EQ(graph.edge_count(), 4u);
  EXPECT_TRUE(graph.has_edge(r1, r3));
}

TEST(Topology, LinkEndsCarryInterfaceNames) {
  const auto configs = make_figure2();
  const auto topo = Topology::build(configs);
  for (const auto& link : topo.links()) {
    EXPECT_FALSE(link.a.interface.empty());
    EXPECT_FALSE(link.b.interface.empty());
    EXPECT_NE(link.a.node, link.b.node);
    EXPECT_TRUE(link.prefix.contains(link.a.address));
    EXPECT_TRUE(link.prefix.contains(link.b.address));
  }
}

TEST(Topology, ShutdownInterfacesAreExcluded) {
  auto configs = make_figure2();
  // Shut down one side of the r1-r2 link; the link must disappear.
  auto* r1 = configs.find_router("r1");
  ASSERT_NE(r1, nullptr);
  ASSERT_FALSE(r1->interfaces.empty());
  r1->interfaces[0].shutdown = true;
  const auto topo = Topology::build(configs);
  EXPECT_EQ(topo.router_link_count(), 3u);
}

TEST(Topology, IgnoresAddresslessInterfaces) {
  auto configs = make_figure2();
  auto* r1 = configs.find_router("r1");
  InterfaceConfig bare;
  bare.name = "Ethernet99";
  r1->interfaces.push_back(bare);
  const auto topo = Topology::build(configs);
  EXPECT_EQ(topo.router_link_count(), 4u);  // unchanged
}

TEST(Topology, EndAccessors) {
  const auto configs = make_figure2();
  const auto topo = Topology::build(configs);
  const auto& link = topo.link(0);
  EXPECT_EQ(link.end_of(link.a.node).node, link.a.node);
  EXPECT_EQ(link.other_end(link.a.node).node, link.b.node);
  EXPECT_TRUE(link.touches(link.a.node));
  EXPECT_TRUE(link.touches(link.b.node));
}

TEST(Topology, FakeInterfacePairFormsLink) {
  // Simulates what topology anonymization does: a matching /31 pair on two
  // routers with no routing coverage still appears as a link.
  auto configs = make_figure2();
  auto* r1 = configs.find_router("r1");
  auto* r4 = configs.find_router("r4");
  InterfaceConfig a;
  a.name = "Ethernet100";
  a.address = Ipv4Address::parse("172.20.0.0");
  a.prefix_length = 31;
  r1->interfaces.push_back(a);
  InterfaceConfig b;
  b.name = "Ethernet100";
  b.address = Ipv4Address::parse("172.20.0.1");
  b.prefix_length = 31;
  r4->interfaces.push_back(b);

  const auto topo = Topology::build(configs);
  EXPECT_EQ(topo.router_link_count(), 5u);
  const auto graph = topo.router_graph();
  EXPECT_TRUE(graph.has_edge(topo.find_node("r1"), topo.find_node("r4")));
}

}  // namespace
}  // namespace confmask
