// Concurrency behavior of the event-driven confmaskd connection manager.
//
// The headline regression here: the old daemon accepted one connection at a
// time and served it to completion, so a single idle client (someone sitting
// in `nc -U <socket>`) wedged every other client. These tests pin the fix:
// an idle connection delays nobody, many clients interleave freely, the
// subscribe verb streams phase events in pipeline order, and the protocol
// limits (line-length cap, idle timeout) close abusive connections without
// collateral damage. Run under TSan in CI to exercise the cross-thread
// publish path (scheduler worker threads -> poll loop wake pipe).
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/config/emit.hpp"
#include "src/netgen/networks.hpp"
#include "src/service/client.hpp"
#include "src/service/daemon.hpp"
#include "src/service/json_line.hpp"

#if defined(CONFMASK_FAULT_INJECTION)
#include "tests/fault_injection.hpp"
#include "src/util/io_shim.hpp"
#endif

namespace confmask {
namespace {

namespace fs = std::filesystem;

std::string unique_socket(const std::string& tag) {
  return "/tmp/confmaskd_" + tag + "_" + std::to_string(::getpid()) + ".sock";
}

fs::path fresh_cache_dir(const std::string& tag) {
  const fs::path dir = fs::path(testing::TempDir()) /
                       ("confmask_conc_" + tag + std::to_string(::getpid()));
  fs::remove_all(dir);
  return dir;
}

// Blocks until the daemon answers a stats roundtrip (or ~5s elapse).
bool await_up(const std::string& endpoint) {
  const std::string stats_line = JsonLineWriter{}.string("op", "stats").str();
  for (int i = 0; i < 250; ++i) {
    if (client_roundtrip(endpoint, stats_line)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

// A raw connected fd with no protocol traffic — the `nc -U` stand-in.
int raw_connect(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) return -1;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::string submit_line(std::uint64_t seed) {
  return JsonLineWriter{}
      .string("op", "submit")
      .string("configs", canonical_config_set_text(make_figure2()))
      .number("k_r", 2)
      .number("k_h", 2)
      .number_u64("seed", seed)
      .str();
}

// Drives one job to a terminal state via status polling; returns the final
// state string ("done"/"failed"/"cancelled"), or nullopt on transport error.
std::optional<std::string> wait_terminal(const std::string& endpoint,
                                         std::uint64_t job) {
  const std::string status_line =
      JsonLineWriter{}.string("op", "status").number_u64("job", job).str();
  for (int i = 0; i < 2'000; ++i) {
    const auto response = client_roundtrip(endpoint, status_line);
    if (!response) return std::nullopt;
    const auto parsed = parse_json_line(*response);
    if (!parsed) return std::nullopt;
    const auto state = get_string(*parsed, "state");
    if (!state) return std::nullopt;
    if (*state == "done" || *state == "failed" || *state == "cancelled") {
      return state;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return std::nullopt;
}

void request_shutdown(const std::string& endpoint) {
  (void)client_roundtrip(
      endpoint, "{\"op\": \"shutdown\", \"mode\": \"cancel\"}");
}

// The pinned head-of-line regression: a client that connects and then says
// nothing must not delay a concurrent submit/result cycle. The pre-fix
// daemon handled connections serially, so this test would hang at the first
// roundtrip below until the idle fd closed.
TEST(DaemonConcurrency, IdleClientDoesNotBlockConcurrentSubmit) {
  const std::string socket_path = unique_socket("idle");
  const fs::path cache_dir = fresh_cache_dir("idle");

  Daemon::Options options;
  options.socket_path = socket_path;
  options.cache_dir = cache_dir;
  Daemon daemon(options);
  std::thread server([&daemon] { EXPECT_EQ(daemon.run(), 0); });
  ASSERT_TRUE(await_up(socket_path));

  const int idle_fd = raw_connect(socket_path);
  ASSERT_GE(idle_fd, 0);
  // Give the poll loop a moment to accept the idle connection so the
  // regression actually exercises an established-but-silent peer.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const auto submitted = client_roundtrip(socket_path, submit_line(1),
                                          static_cast<std::string*>(nullptr),
                                          /*receive_timeout_ms=*/10'000);
  ASSERT_TRUE(submitted.has_value())
      << "submit stalled behind an idle connection";
  const auto parsed = parse_json_line(*submitted);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(get_bool(*parsed, "ok"), true);
  const auto job = get_u64(*parsed, "job");
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(wait_terminal(socket_path, *job), "done");

  const auto result = client_roundtrip(
      socket_path,
      JsonLineWriter{}.string("op", "result").number_u64("job", *job).str(),
      static_cast<std::string*>(nullptr), /*receive_timeout_ms=*/10'000);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(get_bool(*parse_json_line(*result), "ok"), true);

  ::close(idle_fd);
  request_shutdown(socket_path);
  server.join();
  fs::remove_all(cache_dir);
}

// Many clients interleaving submit/status/result/ping concurrently. Seeds
// repeat across threads so the artifact cache serves most of them — the
// point is protocol interleaving, not pipeline throughput.
TEST(DaemonConcurrency, ManyConcurrentClientsInterleave) {
  const std::string socket_path = unique_socket("many");
  const fs::path cache_dir = fresh_cache_dir("many");

  Daemon::Options options;
  options.socket_path = socket_path;
  options.cache_dir = cache_dir;
  Daemon daemon(options);
  std::thread server([&daemon] { EXPECT_EQ(daemon.run(), 0); });
  ASSERT_TRUE(await_up(socket_path));

  constexpr int kClients = 16;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const auto submitted =
          client_roundtrip(socket_path, submit_line(1 + (c % 4)));
      if (!submitted) {
        failures.fetch_add(1);
        return;
      }
      const auto parsed = parse_json_line(*submitted);
      const auto job = parsed ? get_u64(*parsed, "job") : std::nullopt;
      if (!job || get_bool(*parsed, "ok") != true) {
        failures.fetch_add(1);
        return;
      }
      if (!client_roundtrip(socket_path, "{\"op\": \"ping\"}")) {
        failures.fetch_add(1);
        return;
      }
      if (wait_terminal(socket_path, *job) != "done") {
        failures.fetch_add(1);
        return;
      }
      const auto result = client_roundtrip(
          socket_path, JsonLineWriter{}
                           .string("op", "result")
                           .number_u64("job", *job)
                           .str());
      if (!result || get_bool(*parse_json_line(*result), "ok") != true) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  request_shutdown(socket_path);
  server.join();
  fs::remove_all(cache_dir);
}

// subscribe streams the job's lifecycle: ack, a "running" state event,
// pipeline phase spans in execution order, then exactly one terminal state
// event after which the server closes the stream. The job is queued behind
// a single-slot scheduler so the subscription is registered before the
// pipeline starts.
TEST(DaemonConcurrency, SubscribeStreamsPhaseEventsInOrder) {
  const std::string socket_path = unique_socket("subscribe");
  const fs::path cache_dir = fresh_cache_dir("subscribe");

  Daemon::Options options;
  options.socket_path = socket_path;
  options.cache_dir = cache_dir;
  options.max_concurrent_jobs = 1;
  Daemon daemon(options);
  std::thread server([&daemon] { EXPECT_EQ(daemon.run(), 0); });
  ASSERT_TRUE(await_up(socket_path));

  // Occupy the single pipeline slot with a slower network, then queue the
  // job we subscribe to.
  const std::string blocker_line =
      JsonLineWriter{}
          .string("op", "submit")
          .string("configs", canonical_config_set_text(make_enterprise()))
          .number("k_r", 2)
          .number("k_h", 2)
          .number_u64("seed", 77)
          .str();
  const auto blocker = client_roundtrip(socket_path, blocker_line);
  ASSERT_TRUE(blocker.has_value());
  const auto blocker_job = get_u64(*parse_json_line(*blocker), "job");
  ASSERT_TRUE(blocker_job.has_value());

  const auto submitted = client_roundtrip(socket_path, submit_line(42));
  ASSERT_TRUE(submitted.has_value());
  const auto job = get_u64(*parse_json_line(*submitted), "job");
  ASSERT_TRUE(job.has_value());

  std::vector<std::string> lines;
  const bool streamed = client_stream(
      socket_path,
      JsonLineWriter{}.string("op", "subscribe").number_u64("job", *job).str(),
      [&lines](const std::string& line) {
        lines.push_back(line);
        return true;  // consume until the server closes the stream
      },
      nullptr, /*receive_timeout_ms=*/60'000);
  ASSERT_TRUE(streamed);
  ASSERT_GE(lines.size(), 3u) << "expected ack + events, got "
                              << lines.size() << " lines";

  // First line: the subscribe ack.
  const auto ack = parse_json_line(lines.front());
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(get_bool(*ack, "ok"), true);
  EXPECT_EQ(get_string(*ack, "op"), "subscribe");

  // Walk the stream: record state events and top-level phase spans.
  std::vector<std::string> states;
  std::vector<std::string> phases;
  const std::string job_tag = "job-" + std::to_string(*job);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const auto event = parse_json_line(lines[i]);
    if (!event) continue;  // span_end lines carry nested counters
    if (get_string(*event, "type") == "state") {
      EXPECT_EQ(get_u64(*event, "job"), *job);
      states.push_back(std::string(*get_string(*event, "state")));
    } else if (get_string(*event, "type") == "span_begin" &&
               get_int(*event, "parent") == 0) {
      EXPECT_EQ(get_string(*event, "job"), job_tag);
      phases.push_back(std::string(*get_string(*event, "path")));
    }
  }

  // State events: "running" first (published before the trace begins), one
  // terminal "done" last, nothing after it.
  ASSERT_GE(states.size(), 2u);
  EXPECT_EQ(states.front(), "running");
  EXPECT_EQ(states.back(), "done");
  EXPECT_EQ(std::count(states.begin(), states.end(), "done"), 1);

  // Phase spans arrive in pipeline order.
  const std::vector<std::string> expected = {
      "preprocess", "topology_anon", "route_equivalence", "route_anonymity",
      "verification"};
  std::size_t cursor = 0;
  for (const auto& want : expected) {
    bool found = false;
    for (; cursor < phases.size(); ++cursor) {
      if (phases[cursor] == want) {
        found = true;
        ++cursor;
        break;
      }
    }
    ASSERT_TRUE(found) << "phase " << want << " missing or out of order";
  }

  EXPECT_EQ(wait_terminal(socket_path, *blocker_job), "done");
  request_shutdown(socket_path);
  server.join();
  fs::remove_all(cache_dir);
}

// Oversized request lines are rejected with a loud error and the connection
// is closed — both for a newline-terminated line over the cap and for an
// unterminated flood that exceeds the cap before any newline arrives.
TEST(DaemonConcurrency, LineLengthCapRejectsOversizedRequests) {
  const std::string socket_path = unique_socket("linecap");
  const fs::path cache_dir = fresh_cache_dir("linecap");

  Daemon::Options options;
  options.socket_path = socket_path;
  options.cache_dir = cache_dir;
  options.max_line_bytes = 1'024;
  Daemon daemon(options);
  std::thread server([&daemon] { EXPECT_EQ(daemon.run(), 0); });
  ASSERT_TRUE(await_up(socket_path));

  for (const bool terminated : {true, false}) {
    const int fd = raw_connect(socket_path);
    ASSERT_GE(fd, 0);
    std::string flood(2'000, 'x');
    if (terminated) flood.push_back('\n');
    ASSERT_EQ(::write(fd, flood.data(), flood.size()),
              static_cast<ssize_t>(flood.size()));

    std::string received;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof buf);
      if (n <= 0) break;  // server closes after the error
      received.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    EXPECT_NE(received.find("exceeds"), std::string::npos)
        << "terminated=" << terminated << " got: " << received;
    const auto error =
        parse_json_line(received.substr(0, received.find('\n')));
    ASSERT_TRUE(error.has_value());
    EXPECT_EQ(get_bool(*error, "ok"), false);
  }

  // A well-behaved client on the same daemon still works.
  EXPECT_TRUE(client_roundtrip(socket_path, "{\"op\": \"ping\"}").has_value());

  request_shutdown(socket_path);
  server.join();
  fs::remove_all(cache_dir);
}

// Connections silent past the idle budget are reaped.
TEST(DaemonConcurrency, IdleTimeoutClosesSilentConnection) {
  const std::string socket_path = unique_socket("idletimeout");
  const fs::path cache_dir = fresh_cache_dir("idletimeout");

  Daemon::Options options;
  options.socket_path = socket_path;
  options.cache_dir = cache_dir;
  options.idle_timeout_ms = 100;
  Daemon daemon(options);
  std::thread server([&daemon] { EXPECT_EQ(daemon.run(), 0); });
  ASSERT_TRUE(await_up(socket_path));

  const int fd = raw_connect(socket_path);
  ASSERT_GE(fd, 0);
  const auto start = std::chrono::steady_clock::now();
  char buf[64];
  const ssize_t n = ::read(fd, buf, sizeof buf);  // blocks until server close
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(n, 0) << "expected EOF from idle reap";
  EXPECT_LT(elapsed, std::chrono::seconds(10));
  ::close(fd);

  // Active clients are unaffected by the short idle budget.
  EXPECT_TRUE(client_roundtrip(socket_path, "{\"op\": \"ping\"}").has_value());

  request_shutdown(socket_path);
  server.join();
  fs::remove_all(cache_dir);
}

// Startup safety around the socket path: a live daemon's socket is never
// stolen, a genuinely stale socket is reclaimed, and a non-socket file at
// the path is refused and left intact.
TEST(DaemonConcurrency, RefusesLiveSocketAndReclaimsStale) {
  const std::string socket_path = unique_socket("stale");
  const fs::path cache_dir = fresh_cache_dir("stale");

  Daemon::Options options;
  options.socket_path = socket_path;
  options.cache_dir = cache_dir;
  Daemon daemon(options);
  std::thread server([&daemon] { EXPECT_EQ(daemon.run(), 0); });
  ASSERT_TRUE(await_up(socket_path));

  // A second daemon on the same path must refuse to start — and must not
  // unlink the live socket out from under the first.
  Daemon::Options second_options;
  second_options.socket_path = socket_path;
  second_options.cache_dir = fresh_cache_dir("stale2");
  Daemon second(second_options);
  EXPECT_EQ(second.run(), 1);
  EXPECT_TRUE(client_roundtrip(socket_path, "{\"op\": \"ping\"}").has_value())
      << "first daemon lost its socket to the second";

  request_shutdown(socket_path);
  server.join();

  // Leave a stale socket file behind (bound once, listener long gone), and
  // verify a fresh daemon reclaims it.
  {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr)), 0);
    ::close(fd);
  }
  Daemon revived(options);
  std::thread revived_server([&revived] { EXPECT_EQ(revived.run(), 0); });
  ASSERT_TRUE(await_up(socket_path)) << "stale socket was not reclaimed";
  request_shutdown(socket_path);
  revived_server.join();

  // A regular file at the socket path is refused and preserved.
  const std::string file_path = socket_path + ".notasock";
  {
    std::FILE* f = std::fopen(file_path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("precious\n", f);
    std::fclose(f);
  }
  Daemon::Options file_options;
  file_options.socket_path = file_path;
  file_options.cache_dir = fresh_cache_dir("stale3");
  Daemon refuser(file_options);
  EXPECT_EQ(refuser.run(), 1);
  EXPECT_TRUE(fs::exists(file_path)) << "daemon deleted a non-socket file";
  fs::remove(file_path);
  fs::remove_all(cache_dir);
}

// The client-side receive timeout: a server that accepts the connection (via
// the listen backlog) but never answers yields a typed kReceive failure with
// the timeout in the detail, instead of blocking forever.
TEST(DaemonConcurrency, ReceiveTimeoutIsTyped) {
  const std::string socket_path = unique_socket("rcvtimeo");
  // Bind and listen but never accept: AF_UNIX connect() succeeds as long as
  // the backlog has room, so the client gets a connected, silent peer.
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  ::unlink(socket_path.c_str());
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)), 0);
  ASSERT_EQ(::listen(listen_fd, 8), 0);

  TransportError error;
  const auto start = std::chrono::steady_clock::now();
  const auto response = client_roundtrip(socket_path, "{\"op\": \"ping\"}",
                                         &error, /*receive_timeout_ms=*/100);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(response.has_value());
  EXPECT_EQ(error.failure, TransportFailure::kReceive);
  EXPECT_NE(error.detail.find("receive_timeout_ms"), std::string::npos)
      << error.detail;
  EXPECT_LT(elapsed, std::chrono::seconds(10));

  ::close(listen_fd);
  ::unlink(socket_path.c_str());
}

// The TCP listener serves the same protocol through the same connection
// manager; the unix socket keeps working alongside it.
TEST(DaemonConcurrency, TcpListenerServesSameProtocol) {
  const std::string socket_path = unique_socket("tcp");
  const fs::path cache_dir = fresh_cache_dir("tcp");

  Daemon::Options options;
  options.socket_path = socket_path;
  options.cache_dir = cache_dir;
  options.listen_address = "127.0.0.1:0";  // ephemeral port
  Daemon daemon(options);
  std::thread server([&daemon] { EXPECT_EQ(daemon.run(), 0); });
  ASSERT_TRUE(await_up(socket_path));

  std::uint16_t port = 0;
  for (int i = 0; i < 250 && port == 0; ++i) {
    port = daemon.tcp_port();
    if (port == 0) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_NE(port, 0) << "daemon never bound its TCP listener";
  const std::string endpoint = "127.0.0.1:" + std::to_string(port);

  const auto pong = client_roundtrip(endpoint, "{\"op\": \"ping\"}");
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(get_bool(*parse_json_line(*pong), "ok"), true);

  const auto submitted = client_roundtrip(endpoint, submit_line(5));
  ASSERT_TRUE(submitted.has_value());
  const auto job = get_u64(*parse_json_line(*submitted), "job");
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(wait_terminal(endpoint, *job), "done");

  // Unix clients are unaffected by TCP traffic.
  EXPECT_TRUE(client_roundtrip(socket_path, "{\"op\": \"ping\"}").has_value());

  request_shutdown(socket_path);
  server.join();
  fs::remove_all(cache_dir);
}

#if defined(CONFMASK_FAULT_INJECTION)
// Both sides of the wire go through the io shim, so injected short reads and
// EINTR storms are absorbed by the retry loops instead of corrupting frames.
TEST(DaemonConcurrency, RoundtripSurvivesShortReadsAndEintr) {
  const std::string socket_path = unique_socket("fault");
  const fs::path cache_dir = fresh_cache_dir("fault");

  Daemon::Options options;
  options.socket_path = socket_path;
  options.cache_dir = cache_dir;
  Daemon daemon(options);
  std::thread server([&daemon] { EXPECT_EQ(daemon.run(), 0); });
  ASSERT_TRUE(await_up(socket_path));

  {
    ScopedFault short_reads(io::kFaultShortRead, 1'000);
    const auto pong = client_roundtrip(socket_path, "{\"op\": \"ping\"}");
    ASSERT_TRUE(pong.has_value()) << "short reads broke the roundtrip";
    EXPECT_EQ(get_bool(*parse_json_line(*pong), "ok"), true);
  }
  {
    ScopedFault eintr(io::kFaultEintr, 64);
    const auto pong = client_roundtrip(socket_path, "{\"op\": \"ping\"}");
    ASSERT_TRUE(pong.has_value()) << "EINTR storm broke the roundtrip";
    EXPECT_EQ(get_bool(*parse_json_line(*pong), "ok"), true);
  }

  request_shutdown(socket_path);
  server.join();
  fs::remove_all(cache_dir);
}
#endif  // CONFMASK_FAULT_INJECTION

}  // namespace
}  // namespace confmask
