// OSPF semantics of the simulator: SPF path selection with per-interface
// costs, ECMP enumeration, and — critically for ConfMask — distribute-list
// filters that act at RIB-install time without changing link-state
// distances.
#include <gtest/gtest.h>

#include "src/netgen/builder.hpp"
#include "src/netgen/networks.hpp"
#include "src/routing/simulation.hpp"

namespace confmask {
namespace {

Path names(std::initializer_list<const char*> nodes) {
  Path path;
  for (const char* node : nodes) path.emplace_back(node);
  return path;
}

TEST(SimulationOspf, Figure2PathsMatchThePaper) {
  const auto configs = make_figure2();
  const Simulation sim(configs);
  const auto& topo = sim.topology();

  const auto h1h4 = sim.paths(topo.find_node("h1"), topo.find_node("h4"));
  ASSERT_EQ(h1h4.size(), 1u);
  EXPECT_EQ(h1h4[0], names({"h1", "r1", "r3", "r2", "r4", "h4"}));

  const auto h1h2 = sim.paths(topo.find_node("h1"), topo.find_node("h2"));
  ASSERT_EQ(h1h2.size(), 1u);
  EXPECT_EQ(h1h2[0], names({"h1", "r1", "r3", "r2", "h2"}));

  // Reverse direction is symmetric in this network.
  const auto h4h1 = sim.paths(topo.find_node("h4"), topo.find_node("h1"));
  ASSERT_EQ(h4h1.size(), 1u);
  EXPECT_EQ(h4h1[0], names({"h4", "r4", "r2", "r3", "r1", "h1"}));
}

TEST(SimulationOspf, EcmpDiamond) {
  NetworkBuilder builder;
  for (const char* name : {"a", "l", "r", "b"}) {
    builder.router(name);
    builder.enable_ospf(name);
  }
  builder.link("a", "l");
  builder.link("a", "r");
  builder.link("l", "b");
  builder.link("r", "b");
  builder.host("hs", "a");
  builder.host("hd", "b");
  const auto configs = builder.take();
  const Simulation sim(configs);
  const auto& topo = sim.topology();

  const auto paths = sim.paths(topo.find_node("hs"), topo.find_node("hd"));
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], names({"hs", "a", "l", "b", "hd"}));
  EXPECT_EQ(paths[1], names({"hs", "a", "r", "b", "hd"}));

  // FIB at the fan-out router has both next hops.
  const auto& fib = sim.fib(topo.find_node("a"), topo.find_node("hd"));
  EXPECT_EQ(fib.size(), 2u);
}

TEST(SimulationOspf, AsymmetricCostsBreakEcmp) {
  NetworkBuilder builder;
  for (const char* name : {"a", "l", "r", "b"}) {
    builder.router(name);
    builder.enable_ospf(name);
  }
  builder.link("a", "l", 5, 5);
  builder.link("a", "r");  // default 10
  builder.link("l", "b");
  builder.link("r", "b");
  builder.host("hs", "a");
  builder.host("hd", "b");
  const auto configs = builder.take();
  const Simulation sim(configs);
  const auto& topo = sim.topology();

  const auto paths = sim.paths(topo.find_node("hs"), topo.find_node("hd"));
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], names({"hs", "a", "l", "b", "hd"}));
}

TEST(SimulationOspf, InstallTimeFilterCreatesBlackHoleNotReroute) {
  // Deny h4's LAN on r1's interface towards r3 (the only shortest path).
  // OSPF distances are unaffected, so r1 does NOT fall back to the
  // higher-cost path via r2 — the route simply disappears (Cisco
  // distribute-list-in semantics, which Algorithm 1 depends on).
  auto configs = make_figure2();
  const auto& h4 = *configs.find_host("h4");
  auto* r1 = configs.find_router("r1");
  ASSERT_NE(r1, nullptr);
  // r1's interface towards r3 is the one wired second (Ethernet1).
  auto& list = r1->ensure_prefix_list("CMF_T");
  list.add_deny(h4.prefix());
  list.add_permit_all();
  r1->ospf->distribute_lists.push_back(DistributeList{"CMF_T", "Ethernet1"});

  const Simulation sim(configs);
  const auto& topo = sim.topology();
  EXPECT_TRUE(sim.paths(topo.find_node("h1"), topo.find_node("h4")).empty());
  // Other destinations are unaffected.
  EXPECT_EQ(sim.paths(topo.find_node("h1"), topo.find_node("h2")).size(), 1u);
}

TEST(SimulationOspf, FilterOnEqualCostBranchPrunesOnlyThatBranch) {
  NetworkBuilder builder;
  for (const char* name : {"a", "l", "r", "b"}) {
    builder.router(name);
    builder.enable_ospf(name);
  }
  builder.link("a", "l");  // a: Ethernet0
  builder.link("a", "r");  // a: Ethernet1
  builder.link("l", "b");
  builder.link("r", "b");
  builder.host("hs", "a");
  builder.host("hd", "b");
  auto configs = builder.take();

  auto* a = configs.find_router("a");
  const auto dest = configs.find_host("hd")->prefix();
  auto& list = a->ensure_prefix_list("CMF_E1");
  list.add_deny(dest);
  list.add_permit_all();
  a->ospf->distribute_lists.push_back(DistributeList{"CMF_E1", "Ethernet1"});

  const Simulation sim(configs);
  const auto& topo = sim.topology();
  const auto paths = sim.paths(topo.find_node("hs"), topo.find_node("hd"));
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0][2], "l");  // only the left branch survives
}

TEST(SimulationOspf, FatTreeEcmpFanout) {
  const auto configs = make_fattree04();
  const Simulation sim(configs);
  const auto& topo = sim.topology();

  // Cross-pod flow: 2 aggs x 2 cores = 4 equal-cost paths.
  const auto cross = sim.paths(topo.find_node("h0-0-0"),
                               topo.find_node("h1-0-0"));
  EXPECT_EQ(cross.size(), 4u);
  for (const auto& path : cross) EXPECT_EQ(path.size(), 7u);

  // Same-edge flow: one hop through the shared edge switch.
  const auto local = sim.paths(topo.find_node("h0-0-0"),
                               topo.find_node("h0-0-1"));
  ASSERT_EQ(local.size(), 1u);
  EXPECT_EQ(local[0], names({"h0-0-0", "e0-0", "h0-0-1"}));

  // Same-pod, different edge: via either agg, no core.
  const auto pod = sim.paths(topo.find_node("h0-0-0"),
                             topo.find_node("h0-1-0"));
  EXPECT_EQ(pod.size(), 2u);
  for (const auto& path : pod) EXPECT_EQ(path.size(), 5u);
}

TEST(SimulationOspf, GatewayDeliversDirectlyEvenWithFilters) {
  // Connected routes cannot be filtered away.
  auto configs = make_figure2();
  auto* r4 = configs.find_router("r4");
  const auto dest = configs.find_host("h4")->prefix();
  auto& list = r4->ensure_prefix_list("CMF_ALL");
  list.add_deny(dest);
  list.add_permit_all();
  for (const auto& iface : r4->interfaces) {
    r4->ospf->distribute_lists.push_back(DistributeList{"CMF_ALL", iface.name});
  }
  const Simulation sim(configs);
  const auto& topo = sim.topology();
  EXPECT_FALSE(
      sim.paths(topo.find_node("h1"), topo.find_node("h4")).empty());
}

TEST(SimulationOspf, ReachabilityHelpers) {
  const auto configs = make_figure2();
  const Simulation sim(configs);
  const auto& topo = sim.topology();
  const int r1 = topo.find_node("r1");
  EXPECT_TRUE(sim.reaches(r1, topo.find_node("h4")));
  const auto reachable = sim.reachable_hosts_from(r1);
  EXPECT_EQ(reachable.size(), 3u);  // h1, h2, h4
}

TEST(SimulationOspf, DataPlaneExtraction) {
  const auto configs = make_figure2();
  const Simulation sim(configs);
  const auto dp = sim.extract_data_plane();
  EXPECT_EQ(dp.flows.size(), 6u);  // 3 hosts, ordered pairs
  EXPECT_EQ(dp.path_count(), 6u);  // all single-path
  const auto it = dp.flows.find(FlowKey{"h1", "h4"});
  ASSERT_NE(it, dp.flows.end());
  EXPECT_EQ(it->second[0], names({"h1", "r1", "r3", "r2", "r4", "h4"}));
}

TEST(SimulationOspf, RunCounterCounts) {
  Simulation::reset_run_counter();
  const auto configs = make_figure2();
  { const Simulation sim1(configs); }
  { const Simulation sim2(configs); }
  EXPECT_EQ(Simulation::total_runs(), 2u);
}

}  // namespace
}  // namespace confmask
