// netgen scale families: determinism, connectivity, and shape at the
// sizes BENCH_scale.json sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/config/emit.hpp"
#include "src/netgen/scale_families.hpp"
#include "src/routing/flat_topology.hpp"
#include "src/routing/topology.hpp"

namespace confmask {
namespace {

constexpr ScaleFamily kAllFamilies[] = {
    ScaleFamily::kWaxman, ScaleFamily::kWaxmanRip, ScaleFamily::kMultiAs,
    ScaleFamily::kPreferentialAttachment};

TEST(ScaleFamilies, DefaultHostCountClamps) {
  EXPECT_EQ(default_scale_hosts(100), 8);     // floor
  EXPECT_EQ(default_scale_hosts(1000), 40);   // linear middle
  EXPECT_EQ(default_scale_hosts(10000), 400); // cap
}

TEST(ScaleFamilies, GenerationIsDeterministic) {
  for (const ScaleFamily family : kAllFamilies) {
    const ConfigSet first = make_scale_network(family, 150, 42);
    const ConfigSet second = make_scale_network(family, 150, 42);
    ASSERT_EQ(first.routers.size(), second.routers.size());
    ASSERT_EQ(first.hosts.size(), second.hosts.size());
    for (std::size_t i = 0; i < first.routers.size(); ++i) {
      ASSERT_EQ(emit_router(first.routers[i]), emit_router(second.routers[i]))
          << scale_family_name(family) << " router " << i;
    }
    for (std::size_t i = 0; i < first.hosts.size(); ++i) {
      ASSERT_EQ(emit_host(first.hosts[i]), emit_host(second.hosts[i]))
          << scale_family_name(family) << " host " << i;
    }
  }
}

TEST(ScaleFamilies, RouterGraphIsConnectedAcrossSizes) {
  for (const ScaleFamily family : kAllFamilies) {
    for (const int routers : {100, 316}) {
      const ConfigSet configs = make_scale_network(family, routers, 5);
      EXPECT_EQ(static_cast<int>(configs.routers.size()), routers)
          << scale_family_name(family);
      EXPECT_EQ(static_cast<int>(configs.hosts.size()),
                default_scale_hosts(routers))
          << scale_family_name(family);
      const Topology topo = Topology::build(configs);
      EXPECT_TRUE(topo.router_graph().connected())
          << scale_family_name(family) << " at " << routers;
      for (const int host : topo.host_ids()) {
        EXPECT_GE(topo.gateway_of(host), 0)
            << scale_family_name(family) << " host "
            << topo.node(host).name;
      }
    }
  }
}

// Mean router degree should track 2 * (1 + extra_link_factor) and stay
// flat across the sweep — the property that makes the scale curves
// comparable between sizes.
TEST(ScaleFamilies, MeanDegreeIsScaleInvariant) {
  WaxmanOptions options;
  options.hosts = 0;
  double previous = 0.0;
  for (const int routers : {200, 800}) {
    options.routers = routers;
    const ConfigSet configs = make_waxman_network(options, 9);
    const Topology topo = Topology::build(configs);
    const double mean = 2.0 * static_cast<double>(topo.router_link_count()) /
                        static_cast<double>(routers);
    EXPECT_GT(mean, 2.5);
    EXPECT_LT(mean, 5.0);
    if (previous > 0.0) EXPECT_NEAR(mean, previous, 1.0);
    previous = mean;
  }
}

// The BA family must actually be hub-heavy: mean degree pinned near 2m by
// construction, while the max degree grows far past it — the shape Waxman
// never produces and the one that stresses k-degree anonymization cost.
TEST(ScaleFamilies, PreferentialAttachmentGrowsHubs) {
  PreferentialAttachmentOptions options;
  options.routers = 800;
  options.hosts = 0;
  const ConfigSet configs = make_preferential_attachment_network(options, 7);
  const Topology topo = Topology::build(configs);
  ASSERT_TRUE(topo.router_graph().connected());
  const std::vector<int> degrees = topo.router_graph().degrees();
  int max_degree = 0;
  long total = 0;
  for (const int d : degrees) {
    max_degree = std::max(max_degree, d);
    total += d;
  }
  const double mean =
      static_cast<double>(total) / static_cast<double>(degrees.size());
  EXPECT_GT(mean, 3.0);  // ~2m with m=2, minus the clique constant
  EXPECT_LT(mean, 5.0);
  // A uniform-attachment graph of this size tops out around mean + a few;
  // preferential attachment reliably produces an order-of-magnitude hub.
  EXPECT_GE(max_degree, static_cast<int>(5.0 * mean));
}

TEST(ScaleFamilies, MultiAsBuildsSessionsAndScalesAsCount) {
  const ConfigSet small = make_scale_network(ScaleFamily::kMultiAs, 100, 1);
  const Topology small_topo = Topology::build(small);
  const FlatTopology small_flat = FlatTopology::build(small_topo, small);
  EXPECT_EQ(small_flat.as_count(), 2);  // clamp floor
  EXPECT_FALSE(small_flat.sessions().empty());

  const ConfigSet big = make_scale_network(ScaleFamily::kMultiAs, 1000, 1);
  const Topology big_topo = Topology::build(big);
  const FlatTopology big_flat = FlatTopology::build(big_topo, big);
  EXPECT_EQ(big_flat.as_count(), 4);  // 1000 / 250
  // Border rows cost O(R) memory each; the family must keep them scarce.
  EXPECT_LE(static_cast<int>(big_flat.border_routers().size()), 32);
}

}  // namespace
}  // namespace confmask
