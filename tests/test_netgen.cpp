// The generated evaluation networks must reproduce Table 2 exactly and be
// fully functional (connected, every host pair reachable).
#include <gtest/gtest.h>

#include "src/config/emit.hpp"
#include "src/netgen/networks.hpp"
#include "src/routing/simulation.hpp"

namespace confmask {
namespace {

struct Table2Row {
  const char* id;
  int routers;
  int hosts;
  int links;
  const char* type;
};

// |R|, |H|, |E| straight from the paper's Table 2.
constexpr Table2Row kTable2[] = {
    {"A", 10, 8, 26, "BGP+OSPF"},  {"B", 13, 8, 25, "BGP+OSPF"},
    {"C", 11, 9, 22, "BGP+OSPF"},  {"D", 49, 98, 162, "OSPF"},
    {"E", 86, 68, 169, "OSPF"},    {"F", 161, 58, 378, "OSPF"},
    {"G", 20, 16, 48, "OSPF"},     {"H", 72, 64, 320, "OSPF"},
};

TEST(NetGen, Table2CountsMatchThePaper) {
  const auto networks = evaluation_networks();
  ASSERT_EQ(networks.size(), 8u);
  for (std::size_t i = 0; i < networks.size(); ++i) {
    const auto& network = networks[i];
    const auto& row = kTable2[i];
    EXPECT_EQ(network.id, row.id);
    EXPECT_EQ(network.type, row.type);
    const auto topo = Topology::build(network.configs);
    EXPECT_EQ(topo.router_count(), row.routers) << network.name;
    EXPECT_EQ(topo.host_count(), row.hosts) << network.name;
    EXPECT_EQ(topo.links().size(), static_cast<std::size_t>(row.links))
        << network.name;
  }
}

TEST(NetGen, RouterGraphsAreConnected) {
  for (const auto& network : evaluation_networks()) {
    const auto topo = Topology::build(network.configs);
    EXPECT_TRUE(topo.router_graph().connected()) << network.name;
    // Every host has exactly one gateway.
    for (int host : topo.host_ids()) {
      EXPECT_GE(topo.gateway_of(host), 0) << network.name;
    }
  }
}

TEST(NetGen, IspGeneratorIsSeedDeterministic) {
  const auto a = make_isp_ospf("t", 20, 10, 30, 99);
  const auto b = make_isp_ospf("t", 20, 10, 30, 99);
  ASSERT_EQ(a.routers.size(), b.routers.size());
  for (std::size_t i = 0; i < a.routers.size(); ++i) {
    EXPECT_EQ(emit_router(a.routers[i]), emit_router(b.routers[i]));
  }
  const auto c = make_isp_ospf("t", 20, 10, 30, 100);
  bool any_different = false;
  for (std::size_t i = 0; i < a.routers.size(); ++i) {
    if (emit_router(a.routers[i]) != emit_router(c.routers[i])) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(NetGen, IspGeneratorRejectsImpossibleLinkCounts) {
  EXPECT_THROW((void)make_isp_ospf("t", 10, 5, 8, 1), std::invalid_argument);
}

class NetGenReachability : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NetGenReachability, EveryHostPairHasAPath) {
  const auto networks = evaluation_networks();
  const auto& network = networks[GetParam()];
  const Simulation sim(network.configs);
  const auto& topo = sim.topology();
  const auto hosts = topo.host_ids();
  std::size_t missing = 0;
  for (int src : hosts) {
    for (int dst : hosts) {
      if (src != dst && sim.paths(src, dst).empty()) ++missing;
    }
  }
  EXPECT_EQ(missing, 0u) << network.name;
}

INSTANTIATE_TEST_SUITE_P(AllNetworks, NetGenReachability,
                         ::testing::Range<std::size_t>(0, 8));

TEST(NetGen, ConfigLineVolumesAreRealistic) {
  // Not asserted against the paper's exact counts (different emitter), but
  // each network must produce a substantial, plausible configuration set.
  for (const auto& network : evaluation_networks()) {
    const auto total = config_set_total_lines(network.configs);
    EXPECT_GT(total, 100u) << network.name;
    EXPECT_LT(total, 50000u) << network.name;
  }
}

TEST(NetGen, Figure2CostsAreSet) {
  const auto configs = make_figure2();
  const auto* r1 = configs.find_router("r1");
  ASSERT_NE(r1, nullptr);
  int cost1_interfaces = 0;
  for (const auto& iface : r1->interfaces) {
    if (iface.ospf_cost == 1) ++cost1_interfaces;
  }
  EXPECT_EQ(cost1_interfaces, 1);  // the r1-r3 link
}

}  // namespace
}  // namespace confmask
