// Tests for the observability layer (DESIGN.md §9): obs primitives,
// PipelineTrace span nesting/aggregation, NDJSON stream validity, and the
// determinism contract — instrumentation counters identical across worker
// counts and byte-stable across repeated same-seed runs.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/confmask.hpp"
#include "src/core/pipeline_runner.hpp"
#include "src/core/pipeline_trace.hpp"
#include "src/netgen/networks.hpp"
#include "src/util/observability.hpp"
#include "src/util/thread_pool.hpp"

namespace confmask {
namespace {

// ---------------------------------------------------------------------------
// obs primitives

TEST(Observability, CounterAccumulatesAcrossThreads) {
  obs::Counter counter;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(Observability, HistogramBucketsByBitWidth) {
  obs::Histogram histogram;
  histogram.record(0);   // bit_width 0
  histogram.record(1);   // bit_width 1
  histogram.record(2);   // bit_width 2
  histogram.record(3);   // bit_width 2
  histogram.record(8);   // bit_width 4
  const auto snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 14u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 8u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 2u);
  EXPECT_EQ(snap.buckets[3], 0u);
  EXPECT_EQ(snap.buckets[4], 1u);
}

TEST(Observability, JsonEscapeHandlesControlCharacters) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(obs::json_escape(std::string("\x01", 1)), "\\u0001");
}

// ---------------------------------------------------------------------------
// Span lifecycle and aggregation

TEST(PipelineTraceTest, InactiveByDefault) {
  EXPECT_EQ(PipelineTrace::active(), nullptr);
  // All statics are harmless no-ops without an installed trace.
  auto span = PipelineTrace::begin("orphan");
  EXPECT_FALSE(static_cast<bool>(span));
  span.add("ignored");
  span.end();
  PipelineTrace::count("ignored");
  PipelineTrace::record("ignored", 42);
}

TEST(PipelineTraceTest, SpansNestIntoPaths) {
  PipelineTrace trace;
  ASSERT_EQ(PipelineTrace::active(), &trace);
  {
    auto outer = PipelineTrace::begin("outer");
    outer.add("widgets", 2);
    for (int i = 0; i < 3; ++i) {
      auto inner = PipelineTrace::begin("inner");
      inner.add("widgets", 1);
    }
  }
  const auto metrics = trace.metrics();
  ASSERT_EQ(metrics.size(), 2u);
  EXPECT_EQ(metrics[0].path, "outer");
  EXPECT_EQ(metrics[0].count, 1u);
  EXPECT_EQ(metrics[0].counters.at("widgets"), 2u);
  EXPECT_EQ(metrics[1].path, "outer/inner");
  EXPECT_EQ(metrics[1].count, 3u);
  EXPECT_EQ(metrics[1].counters.at("widgets"), 3u);
}

TEST(PipelineTraceTest, CountAttachesToInnermostOpenSpan) {
  PipelineTrace trace;
  {
    auto outer = PipelineTrace::begin("outer");
    auto inner = PipelineTrace::begin("inner");
    PipelineTrace::count("hits", 5);
    inner.end();
    PipelineTrace::count("hits", 1);  // now lands on "outer"
  }
  const auto metrics = trace.metrics();
  ASSERT_EQ(metrics.size(), 2u);
  EXPECT_EQ(metrics[0].counters.at("hits"), 1u);
  EXPECT_EQ(metrics[1].counters.at("hits"), 5u);
}

TEST(PipelineTraceTest, NestedTracesOutermostWins) {
  PipelineTrace outer_trace;
  {
    PipelineTrace inner_trace;
    EXPECT_EQ(PipelineTrace::active(), &outer_trace);
    auto span = PipelineTrace::begin("work");
    span.end();
    EXPECT_TRUE(inner_trace.metrics().empty());
  }
  // Destroying the inert inner trace must not uninstall the outer one.
  EXPECT_EQ(PipelineTrace::active(), &outer_trace);
  EXPECT_EQ(outer_trace.metrics().size(), 1u);
}

TEST(PipelineTraceTest, MoveTransfersSpanOwnership) {
  PipelineTrace trace;
  {
    auto span = PipelineTrace::begin("moved");
    auto stolen = std::move(span);
    EXPECT_FALSE(static_cast<bool>(span));  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(static_cast<bool>(stolen));
    span.end();  // no-op on the moved-from handle
  }
  ASSERT_EQ(trace.metrics().size(), 1u);
  EXPECT_EQ(trace.metrics()[0].count, 1u);
}

TEST(PipelineTraceTest, HistogramsRecordViaStatic) {
  PipelineTrace trace;
  PipelineTrace::record("sizes", 3);
  PipelineTrace::record("sizes", 5);
  const std::string json = trace.metrics_json(false);
  EXPECT_NE(json.find("\"name\": \"sizes\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"sum\": 8"), std::string::npos);
}

// ---------------------------------------------------------------------------
// NDJSON stream

// Minimal recursive-descent JSON validator — the repo has no JSON
// dependency, and "every line the sink emits parses" is exactly the
// contract external tooling relies on.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    pos_ = 0;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing '"'
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::string w(word);
    if (text_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

TEST(PipelineTraceTest, NdjsonStreamIsValidAndOrdered) {
  std::ostringstream sink;
  {
    PipelineTrace::Options options;
    options.trace_sink = &sink;
    PipelineTrace trace(options);
    auto outer = trace.span("phase");
    outer.add("things", 7);
    auto inner = trace.span("step");
    inner.end();
    trace.event("checkpoint", "detail \"quoted\"");
  }
  std::istringstream lines(sink.str());
  std::string line;
  std::vector<std::string> seen;
  std::uint64_t expected_seq = 0;
  while (std::getline(lines, line)) {
    JsonChecker checker(line);
    EXPECT_TRUE(checker.valid()) << "invalid JSON line: " << line;
    EXPECT_NE(line.find("\"seq\": " + std::to_string(expected_seq)),
              std::string::npos)
        << "line out of sequence: " << line;
    ++expected_seq;
    seen.push_back(line);
  }
  ASSERT_EQ(seen.size(), 7u);  // begin, 2x span_begin, 2x span_end,
                               // event, trace_end
  EXPECT_NE(seen.front().find("\"schema\": \"confmask.trace/1\""),
            std::string::npos);
  EXPECT_NE(seen.front().find("\"type\": \"trace_begin\""), std::string::npos);
  // Inner span closes before outer; dur_ns and counters ride the end lines.
  EXPECT_NE(seen[3].find("\"path\": \"phase/step\""), std::string::npos);
  EXPECT_NE(seen[3].find("\"dur_ns\": "), std::string::npos);
  EXPECT_NE(seen[4].find("\"type\": \"event\""), std::string::npos);
  EXPECT_NE(seen[5].find("\"counters\": {\"things\": 7}"), std::string::npos);
  EXPECT_NE(seen.back().find("\"type\": \"trace_end\""), std::string::npos);
}

TEST(PipelineTraceTest, MetricsJsonIsValidJson) {
  PipelineTrace trace;
  {
    auto span = trace.span("phase");
    span.add("units", 3);
    PipelineTrace::record("sizes", 4);
  }
  for (const bool timings : {false, true}) {
    const std::string json = trace.metrics_json(timings);
    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid()) << json;
  }
  EXPECT_NE(trace.metrics_json(true).find("\"pool\""), std::string::npos);
  EXPECT_NE(trace.metrics_json(true).find("\"timings\""), std::string::npos);
  EXPECT_EQ(trace.metrics_json(false).find("\"pool\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Determinism contract on the real pipeline

std::string run_traced(const ConfigSet& configs, unsigned workers) {
  ThreadPool::configure(workers);
  PipelineTrace trace;
  ConfMaskOptions options;
  options.k_r = 2;
  options.k_h = 2;
  options.noise_p = 0.4;
  options.seed = 7;
  const auto guarded = run_pipeline_guarded(configs, options);
  EXPECT_TRUE(guarded.ok());
  EXPECT_FALSE(guarded.diagnostics.span_metrics.empty());
  // Deterministic content only: counters, histograms — no durations.
  return trace.metrics_json(/*include_timings=*/false);
}

TEST(PipelineTraceTest, MetricsByteStableAcrossWorkerCounts) {
  const ConfigSet network = make_figure2();
  const std::string serial = run_traced(network, 1);
  const std::string parallel = run_traced(network, 4);
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("\"deterministic\": true"), std::string::npos);
  EXPECT_NE(serial.find("\"path\": \"preprocess\""), std::string::npos);
  EXPECT_NE(serial.find("\"path\": \"verification\""), std::string::npos);
  ThreadPool::configure(0);  // restore default for later tests
}

TEST(PipelineTraceTest, MetricsByteStableAcrossRepeatedRuns) {
  const ConfigSet network = make_figure2();
  const std::string first = run_traced(network, 2);
  const std::string second = run_traced(network, 2);
  EXPECT_EQ(first, second);
  ThreadPool::configure(0);
}

TEST(PipelineTraceTest, GuardedRunnerPopulatesSpanMetrics) {
  PipelineTrace trace;
  ConfMaskOptions options;
  options.k_r = 2;
  options.k_h = 2;
  options.seed = 3;
  const auto guarded = run_pipeline_guarded(make_figure2(), options);
  ASSERT_TRUE(guarded.ok());
  const auto& spans = guarded.diagnostics.span_metrics;
  ASSERT_FALSE(spans.empty());
  bool saw_verification = false;
  for (const auto& span : spans) {
    if (span.path == "verification") {
      saw_verification = true;
      EXPECT_EQ(span.counters.at("equivalent"), 1u);
    }
  }
  EXPECT_TRUE(saw_verification);
}

}  // namespace
}  // namespace confmask
