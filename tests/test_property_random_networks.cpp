// Randomized property testing: the pipeline's guarantees must hold on
// arbitrary networks, not just the eight curated evaluation sets. Each
// case generates a random topology (seeded — failures are reproducible
// from the parameter listing), runs the full pipeline and asserts the
// paper's three core properties: functional equivalence, k-degree
// anonymity, and k-route anonymity.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "src/core/confmask.hpp"
#include "src/core/metrics.hpp"
#include "src/core/utility_properties.hpp"
#include "src/netgen/builder.hpp"
#include "src/netgen/networks.hpp"

namespace confmask {
namespace {

int achievable_k(const ConfigSet& configs, int k_r) {
  std::map<int, int> as_sizes;
  for (const auto& router : configs.routers) {
    ++as_sizes[router.bgp ? router.bgp->local_as : -1];
  }
  int k = k_r;
  for (const auto& [as_number, size] : as_sizes) k = std::min(k, size);
  if (as_sizes.size() > 1) k = std::min(k, static_cast<int>(as_sizes.size()));
  return k;
}

void assert_pipeline_properties(const ConfigSet& original,
                                const ConfMaskOptions& options,
                                const std::string& label) {
  const auto result = run_confmask(original, options);
  ASSERT_TRUE(result.equivalence_converged) << label;
  EXPECT_TRUE(result.functionally_equivalent) << label;
  EXPECT_TRUE(
      check_utility_properties(result.original_dp, result.anonymized_dp)
          .all())
      << label;
  EXPECT_GE(topology_min_degree_class_two_level(result.anonymized),
            achievable_k(original, options.k_r))
      << label;
  EXPECT_GE(min_route_companions(result.anonymized_dp), options.k_h) << label;
}

struct RandomCase {
  int routers;
  int hosts;
  int extra_links;  // beyond the spanning tree
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<RandomCase>& info) {
  std::ostringstream out;
  out << "r" << info.param.routers << "_h" << info.param.hosts << "_e"
      << info.param.extra_links << "_s" << info.param.seed;
  return out.str();
}

class RandomOspf : public ::testing::TestWithParam<RandomCase> {};

TEST_P(RandomOspf, PipelinePropertiesHold) {
  const auto& param = GetParam();
  const auto configs =
      make_isp_ospf("t", param.routers, param.hosts,
                    param.routers - 1 + param.extra_links, param.seed);
  ConfMaskOptions options;
  options.k_r = 4;
  options.k_h = 2;
  options.seed = param.seed * 31 + 7;
  assert_pipeline_properties(configs, options, case_name({param, 0}));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomOspf,
    ::testing::Values(RandomCase{6, 4, 2, 1}, RandomCase{10, 6, 5, 2},
                      RandomCase{14, 8, 9, 3}, RandomCase{20, 10, 14, 4},
                      RandomCase{27, 12, 20, 5}, RandomCase{33, 15, 11, 6},
                      RandomCase{12, 20, 8, 7}, RandomCase{40, 10, 30, 8}),
    case_name);

class RandomRip : public ::testing::TestWithParam<RandomCase> {};

TEST_P(RandomRip, PipelinePropertiesHold) {
  const auto& param = GetParam();
  const auto configs =
      make_isp_rip("t", param.routers, param.hosts,
                   param.routers - 1 + param.extra_links, param.seed);
  ConfMaskOptions options;
  options.k_r = 4;
  options.k_h = 2;
  options.seed = param.seed * 17 + 3;
  assert_pipeline_properties(configs, options, case_name({param, 0}));
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomRip,
                         ::testing::Values(RandomCase{6, 4, 2, 11},
                                           RandomCase{12, 8, 6, 12},
                                           RandomCase{18, 10, 12, 13},
                                           RandomCase{25, 12, 9, 14}),
                         case_name);

/// Random multi-AS BGP+OSPF networks: ring per AS, random eBGP mesh.
ConfigSet random_bgp_network(int as_count, int routers_per_as,
                             std::uint64_t seed) {
  Rng rng(seed);
  NetworkBuilder builder;
  std::vector<std::vector<std::string>> members(
      static_cast<std::size_t>(as_count));
  for (int a = 0; a < as_count; ++a) {
    for (int i = 0; i < routers_per_as; ++i) {
      const auto name = "a" + std::to_string(a) + "r" + std::to_string(i);
      builder.router(name);
      builder.enable_ospf(name);
      builder.enable_bgp(name, 65000 + a);
      members[static_cast<std::size_t>(a)].push_back(name);
    }
    for (int i = 0; i < routers_per_as; ++i) {
      builder.link(members[static_cast<std::size_t>(a)][
                       static_cast<std::size_t>(i)],
                   members[static_cast<std::size_t>(a)][static_cast<
                       std::size_t>((i + 1) % routers_per_as)]);
    }
    builder.host("h" + std::to_string(a),
                 rng.pick(members[static_cast<std::size_t>(a)]));
  }
  // AS-level ring (connected) plus one random chord when possible.
  for (int a = 0; a < as_count; ++a) {
    const int b = (a + 1) % as_count;
    builder.ebgp_link(rng.pick(members[static_cast<std::size_t>(a)]),
                      rng.pick(members[static_cast<std::size_t>(b)]));
  }
  if (as_count > 3) {
    builder.ebgp_link(rng.pick(members[0]),
                      rng.pick(members[static_cast<std::size_t>(
                          as_count / 2)]));
  }
  return builder.take();
}

class RandomBgp
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(RandomBgp, PipelinePropertiesHold) {
  const auto [as_count, routers_per_as, seed] = GetParam();
  const auto configs = random_bgp_network(as_count, routers_per_as, seed);
  ConfMaskOptions options;
  options.k_r = 3;
  options.k_h = 2;
  options.seed = seed + 1000;
  std::ostringstream label;
  label << "as" << as_count << "_r" << routers_per_as << "_s" << seed;
  assert_pipeline_properties(configs, options, label.str());
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomBgp,
                         ::testing::Combine(::testing::Values(3, 4, 5),
                                            ::testing::Values(3, 5),
                                            ::testing::Values(21u, 22u)));

TEST(RandomNetworks, NodeAdditionPropertyHoldsOnRandomTopologies) {
  for (const std::uint64_t seed : {31u, 32u, 33u}) {
    const auto configs = make_isp_ospf("t", 15, 8, 22, seed);
    ConfMaskOptions options;
    options.k_r = 4;
    options.fake_routers = 3;
    options.seed = seed;
    const auto result = run_confmask(configs, options);
    EXPECT_TRUE(result.functionally_equivalent) << seed;
    EXPECT_EQ(result.anonymized.routers.size(), 18u);
  }
}

}  // namespace
}  // namespace confmask
