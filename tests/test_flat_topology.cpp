// FlatTopology CSR/SoA invariants, and the golden-FIB gate: the flat
// engine must be BIT-IDENTICAL to the frozen pre-refactor engine
// (BaselineSimulation) on every network family, curated and generated.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/netgen/networks.hpp"
#include "src/netgen/scale_families.hpp"
#include "src/routing/baseline_sim.hpp"
#include "src/routing/flat_topology.hpp"
#include "src/routing/simulation.hpp"
#include "src/routing/topology.hpp"

namespace confmask {
namespace {

/// Every (router, host) FIB column of the flat engine equals the frozen
/// pre-refactor engine's, entry for entry and in order.
void expect_fibs_identical(const ConfigSet& configs,
                           const std::string& label) {
  const Simulation fast(configs);
  const BaselineSimulation baseline(configs);
  const Topology& topo = fast.topology();
  ASSERT_EQ(topo.node_count(), baseline.topology().node_count()) << label;
  for (int router = 0; router < topo.router_count(); ++router) {
    for (const int host : topo.host_ids()) {
      const auto lhs = fast.fib(router, host);
      const auto& rhs = baseline.fib(router, host);
      ASSERT_EQ(lhs.size(), rhs.size())
          << label << ": " << topo.node(router).name << " -> "
          << topo.node(host).name;
      for (std::size_t i = 0; i < lhs.size(); ++i) {
        ASSERT_TRUE(lhs[i] == rhs[i])
            << label << ": " << topo.node(router).name << " -> "
            << topo.node(host).name << " hop " << i << ": flat ("
            << lhs[i].link << "," << lhs[i].neighbor << ") baseline ("
            << rhs[i].link << "," << rhs[i].neighbor << ")";
      }
    }
  }
}

// The CSR half-edge arrays must mirror Topology::links_of exactly — FIB
// push order (and therefore every golden artifact byte) rides on it.
TEST(FlatTopology, CsrMirrorsLinksOfOrder) {
  const ConfigSet configs = make_scale_network(ScaleFamily::kWaxman, 60, 7);
  const Topology topo = Topology::build(configs);
  const FlatTopology flat = FlatTopology::build(topo, configs);
  for (int u = 0; u < topo.node_count(); ++u) {
    const auto& incident = topo.links_of(u);
    ASSERT_EQ(flat.last_out(u) - flat.first_out(u),
              static_cast<std::int32_t>(incident.size()))
        << "node " << u;
    for (std::size_t i = 0; i < incident.size(); ++i) {
      const std::int32_t e = flat.first_out(u) + static_cast<std::int32_t>(i);
      EXPECT_EQ(flat.edge_link(e), incident[i]) << "node " << u;
      EXPECT_EQ(flat.edge_target(e),
                topo.link(incident[i]).other_end(u).node)
          << "node " << u;
    }
  }
}

// Gateway host-facing interfaces must intern to real slots: inbound ACLs
// bind there (regression — host links once skipped interface interning,
// silently disabling source-gateway ACLs).
TEST(FlatTopology, HostLinksInternRouterSideInterfaces) {
  const ConfigSet configs = make_scale_network(ScaleFamily::kWaxman, 40, 3);
  const Topology topo = Topology::build(configs);
  const FlatTopology flat = FlatTopology::build(topo, configs);
  const int n = topo.router_count();
  ASSERT_GT(topo.host_count(), 0);
  for (const int host : topo.host_ids()) {
    for (std::int32_t e = flat.first_out(host); e < flat.last_out(host);
         ++e) {
      EXPECT_EQ(flat.edge_flags(e), 0) << "host link carries IGP flags";
      EXPECT_LT(flat.edge_target(e), n);
      EXPECT_GE(flat.edge_peer_iface(e), 0)
          << "gateway-side interface of host " << topo.node(host).name
          << " not interned";
      EXPECT_EQ(flat.edge_iface(e), -1) << "hosts own no interface slots";
    }
  }
}

TEST(FlatTopology, MultiAsSessionAndBorderIndex) {
  const ConfigSet configs = make_scale_network(ScaleFamily::kMultiAs, 80, 11);
  const Topology topo = Topology::build(configs);
  const FlatTopology flat = FlatTopology::build(topo, configs);
  ASSERT_FALSE(flat.sessions().empty());
  ASSERT_GE(flat.as_count(), 2);
  for (const auto& session : flat.sessions()) {
    EXPECT_NE(flat.router_as(session.router_a),
              flat.router_as(session.router_b));
    EXPECT_GE(flat.border_index(session.router_a), 0);
    EXPECT_GE(flat.border_index(session.router_b), 0);
  }
  for (const int border : flat.border_routers()) {
    EXPECT_GE(flat.as_index(border), 0);
    EXPECT_LT(flat.as_index(border), flat.as_count());
  }
}

TEST(FlatVsBaseline, IdenticalOnEvaluationNetworks) {
  for (const auto& net : evaluation_networks()) {
    expect_fibs_identical(net.configs, net.id + " (" + net.name + ")");
  }
}

TEST(FlatVsBaseline, IdenticalOnScaleFamilies) {
  expect_fibs_identical(make_scale_network(ScaleFamily::kWaxman, 500, 21),
                        "waxman-ospf-500");
  expect_fibs_identical(make_scale_network(ScaleFamily::kWaxmanRip, 200, 22),
                        "waxman-rip-200");
  expect_fibs_identical(make_scale_network(ScaleFamily::kMultiAs, 300, 23),
                        "multi-as-300");
}

}  // namespace
}  // namespace confmask
