// Watch mode end to end: patched re-anonymization is byte-identical to a
// cold run for filter-only edits, falls back (still byte-identical) on
// structural edits and on graft-hazard edits, and the scheduler's resubmit
// path reconstructs, patches and converges through the cache — including
// the delete-then-readd cycle landing back on the original cache entry.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <utility>

#include "src/config/diff.hpp"
#include "src/config/emit.hpp"
#include "src/core/patch_mode.hpp"
#include "src/core/pipeline_runner.hpp"
#include "src/netgen/networks.hpp"
#include "src/service/job_scheduler.hpp"
#include "src/util/ipv4.hpp"

namespace confmask {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / ("confmask_" + name);
  fs::remove_all(dir);
  return dir;
}

ConfMaskOptions small_options(std::uint64_t seed) {
  ConfMaskOptions options;
  options.k_r = 2;
  options.k_h = 2;
  options.seed = seed;
  return options;
}

/// The canonical watch edit: a fresh prefix list (deny + permit-all)
/// bound as an OSPF distribute-list on the named router.
void bind_filter(ConfigSet& configs, const std::string& router_name) {
  RouterConfig* router = configs.find_router(router_name);
  ASSERT_NE(router, nullptr);
  ASSERT_TRUE(router->ospf.has_value());
  PrefixList list;
  list.name = "WATCH-TEST";
  list.add_deny(Ipv4Prefix{Ipv4Address{10, 200, 200, 0}, 24});
  list.add_permit_all();
  router->prefix_lists.push_back(std::move(list));
  router->ospf->distribute_lists.push_back(
      DistributeList{"WATCH-TEST", router->interfaces.front().name});
}

/// Cold-runs `base` with capture and returns the finished context.
std::shared_ptr<const PatchContext> capture_context(
    const ConfigSet& base, const ConfMaskOptions& options) {
  PatchCapture capture;
  const auto run =
      run_pipeline_guarded(base, options, RetryPolicy{},
                           EquivalenceStrategy::kConfMask, nullptr, nullptr,
                           &capture);
  EXPECT_TRUE(run.ok());
  return finish_capture(capture);
}

/// Runs `edited` cold and patched and asserts byte-identical artifacts.
/// Returns the patched run's stats for reuse-depth assertions.
PipelineStats expect_patched_matches_cold(
    const ConfigSet& edited, const ConfMaskOptions& options,
    const PatchContext* context) {
  const auto cold =
      run_pipeline_guarded(edited, options, RetryPolicy{},
                           EquivalenceStrategy::kConfMask, nullptr, nullptr,
                           nullptr);
  const auto patched =
      run_pipeline_guarded(edited, options, RetryPolicy{},
                           EquivalenceStrategy::kConfMask, nullptr, context,
                           nullptr);
  EXPECT_TRUE(cold.ok());
  EXPECT_TRUE(patched.ok());
  EXPECT_EQ(canonical_config_set_text(cold.result->anonymized),
            canonical_config_set_text(patched.result->anonymized));
  return patched.result->stats;
}

TEST(WatchMode, FilterEditPatchesAndStaysByteIdentical) {
  const ConfigSet base = canonicalize(make_figure2());
  const ConfMaskOptions options = small_options(7);
  const auto context = capture_context(base, options);
  ASSERT_NE(context, nullptr);

  ConfigSet edited = base;
  bind_filter(edited, "r2");
  edited = canonicalize(std::move(edited));

  const PipelineStats stats =
      expect_patched_matches_cold(edited, options, context.get());
  // The filter-only edit must actually reuse captured state — otherwise
  // the patched path silently degraded to a cold run.
  EXPECT_GT(stats.patched_stages, 0);
}

TEST(WatchMode, StructuralEditFallsBackColdButByteIdentical) {
  const ConfigSet base = canonicalize(make_figure2());
  const ConfMaskOptions options = small_options(7);
  const auto context = capture_context(base, options);
  ASSERT_NE(context, nullptr);

  ConfigSet edited = base;
  HostConfig host;
  host.hostname = "h9";
  host.address = Ipv4Address{10, 88, 0, 2};
  host.gateway = Ipv4Address{10, 88, 0, 1};
  edited.hosts.push_back(host);
  edited = canonicalize(std::move(edited));

  const PipelineStats stats =
      expect_patched_matches_cold(edited, options, context.get());
  // A new device shifts node ids: every snapshot must be rejected.
  EXPECT_EQ(stats.patched_stages, 0);
  EXPECT_GT(stats.patch_fallbacks, 0);
}

TEST(WatchMode, FrontInterfaceExtraLineEditStaysByteIdentical) {
  const ConfigSet base = canonicalize(make_figure2());
  const ConfMaskOptions options = small_options(7);
  const auto context = capture_context(base, options);
  ASSERT_NE(context, nullptr);

  // Filter-only by classification, but fake interfaces CLONE the first
  // real interface's passthrough lines — replaying the captured topology
  // stage would graft stale clones, so the graft must bail while the
  // simulation snapshots stay reusable. Byte identity is the proof.
  ConfigSet edited = base;
  RouterConfig* router = edited.find_router("r1");
  ASSERT_NE(router, nullptr);
  ASSERT_FALSE(router->interfaces.empty());
  router->interfaces.front().extra_lines.push_back("service-policy out QOS");
  edited = canonicalize(std::move(edited));

  const PipelineStats stats =
      expect_patched_matches_cold(edited, options, context.get());
  EXPECT_GT(stats.patched_stages, 0);
}

TEST(WatchMode, SchedulerResubmitPatchesAndConvergesWithPlainSubmit) {
  ArtifactCache cache(fresh_dir("watch_resubmit"));
  JobScheduler scheduler(&cache, {});

  JobRequest request;
  request.configs = make_figure2();
  request.options = small_options(7);
  const SubmitOutcome first = scheduler.submit_ex(std::move(request));
  ASSERT_TRUE(first.accepted());
  ASSERT_TRUE(scheduler.wait(*first.id));
  const auto first_status = scheduler.status(*first.id);
  ASSERT_TRUE(first_status.has_value());
  ASSERT_EQ(first_status->state, JobState::kDone);
  EXPECT_GE(scheduler.stats().watch_contexts, 1u);

  ConfigSet edited = make_figure2();
  bind_filter(edited, "r2");
  ResubmitRequest resubmit;
  resubmit.base_key_hex = first_status->cache_key;
  resubmit.diff_text = render_bundle_diff(make_figure2(), edited);
  resubmit.options = small_options(7);
  const SubmitOutcome second = scheduler.resubmit(std::move(resubmit));
  ASSERT_TRUE(second.accepted()) << second.error;
  ASSERT_TRUE(scheduler.wait(*second.id));
  const auto second_status = scheduler.status(*second.id);
  ASSERT_TRUE(second_status.has_value());
  ASSERT_EQ(second_status->state, JobState::kDone);
  EXPECT_FALSE(second_status->cache_hit);
  EXPECT_TRUE(second_status->patched);
  EXPECT_EQ(scheduler.stats().resubmitted, 1u);
  EXPECT_EQ(scheduler.stats().patched_jobs, 1u);

  // A plain submit of the edited bundle keys identically to the
  // resubmit's reconstruction — hitting the cache proves the resubmit
  // executed the exact bytes a full submit would have.
  JobRequest plain;
  plain.configs = edited;
  plain.options = small_options(7);
  const SubmitOutcome third = scheduler.submit_ex(std::move(plain));
  ASSERT_TRUE(third.accepted());
  ASSERT_TRUE(scheduler.wait(*third.id));
  const auto third_status = scheduler.status(*third.id);
  ASSERT_TRUE(third_status.has_value());
  EXPECT_EQ(third_status->state, JobState::kDone);
  EXPECT_TRUE(third_status->cache_hit);
  EXPECT_EQ(third_status->cache_key, second_status->cache_key);
  scheduler.shutdown(JobScheduler::ShutdownMode::kDrain);
}

TEST(WatchMode, DeleteThenReaddResubmitRehitsTheOriginalEntry) {
  ArtifactCache cache(fresh_dir("watch_readd"));
  JobScheduler scheduler(&cache, {});

  JobRequest request;
  request.configs = make_figure2();
  request.options = small_options(7);
  const SubmitOutcome base = scheduler.submit_ex(std::move(request));
  ASSERT_TRUE(base.accepted());
  ASSERT_TRUE(scheduler.wait(*base.id));
  const auto base_status = scheduler.status(*base.id);
  ASSERT_TRUE(base_status.has_value());
  ASSERT_EQ(base_status->state, JobState::kDone);

  // Cycle 1: delete h4. Runs cold (structural), publishes its own entry.
  ConfigSet without_h4 = make_figure2();
  std::erase_if(without_h4.hosts, [](const HostConfig& host) {
    return host.hostname == "h4";
  });
  ResubmitRequest remove;
  remove.base_key_hex = base_status->cache_key;
  remove.diff_text = render_bundle_diff(make_figure2(), without_h4);
  remove.options = small_options(7);
  const SubmitOutcome removed = scheduler.resubmit(std::move(remove));
  ASSERT_TRUE(removed.accepted()) << removed.error;
  ASSERT_TRUE(scheduler.wait(*removed.id));
  const auto removed_status = scheduler.status(*removed.id);
  ASSERT_TRUE(removed_status.has_value());
  ASSERT_EQ(removed_status->state, JobState::kDone);
  EXPECT_NE(removed_status->cache_key, base_status->cache_key);
  const std::uint64_t sims_after_remove = scheduler.stats().simulations;

  // Cycle 2: re-add h4 byte-identically, diffed against cycle 1's entry.
  // The reconstructed bundle IS the original network, so the job keys back
  // to the original entry and completes from cache — zero simulations.
  ResubmitRequest readd;
  readd.base_key_hex = removed_status->cache_key;
  readd.diff_text = render_bundle_diff(without_h4, make_figure2());
  readd.options = small_options(7);
  const SubmitOutcome readded = scheduler.resubmit(std::move(readd));
  ASSERT_TRUE(readded.accepted()) << readded.error;
  ASSERT_TRUE(scheduler.wait(*readded.id));
  const auto readd_status = scheduler.status(*readded.id);
  ASSERT_TRUE(readd_status.has_value());
  ASSERT_EQ(readd_status->state, JobState::kDone);
  EXPECT_TRUE(readd_status->cache_hit);
  EXPECT_EQ(readd_status->cache_key, base_status->cache_key);
  EXPECT_EQ(scheduler.stats().simulations, sims_after_remove);
  scheduler.shutdown(JobScheduler::ShutdownMode::kDrain);
}

TEST(WatchMode, ResubmitAgainstUnknownBaseIsPermanentRejection) {
  ArtifactCache cache(fresh_dir("watch_unknown_base"));
  JobScheduler scheduler(&cache, {});
  ResubmitRequest request;
  request.base_key_hex = "00000000deadbeef";
  request.diff_text = std::string(kBundleDiffHeader) + "\n";
  request.options = small_options(7);
  const SubmitOutcome outcome = scheduler.resubmit(std::move(request));
  EXPECT_FALSE(outcome.accepted());
  // Permanent for this request: the client recovers with a full submit,
  // not by retrying the resubmit.
  EXPECT_EQ(outcome.retry_after_ms, 0u);
  EXPECT_FALSE(outcome.error.empty());
  scheduler.shutdown(JobScheduler::ShutdownMode::kCancelPending);
}

}  // namespace
}  // namespace confmask
