#include "src/core/metrics.hpp"

#include <gtest/gtest.h>

#include "src/core/confmask.hpp"
#include "src/netgen/networks.hpp"
#include "src/routing/simulation.hpp"

namespace confmask {
namespace {

DataPlane dp_of(const ConfigSet& configs) {
  const Simulation sim(configs);
  return sim.extract_data_plane();
}

TEST(Metrics, RouteAnonymityOnSinglePathNetwork) {
  const auto metric = route_anonymity_nr(dp_of(make_figure2()));
  EXPECT_GT(metric.pairs, 0u);
  EXPECT_EQ(metric.minimum, 1);
  EXPECT_DOUBLE_EQ(metric.average, 1.0);
}

TEST(Metrics, RouteAnonymityCountsEcmpAlternatives) {
  const auto metric = route_anonymity_nr(dp_of(make_fattree04()));
  // Cross-pod edge-router pairs have 4 distinct paths each.
  EXPECT_GT(metric.average, 1.0);
}

TEST(Metrics, RouteAnonymityGrowsWithKh) {
  const auto configs = make_fattree04();
  ConfMaskOptions options;
  options.seed = 53;
  options.k_h = 2;
  const auto kh2 = run_confmask(configs, options);
  options.k_h = 6;
  const auto kh6 = run_confmask(configs, options);
  EXPECT_GE(min_route_companions(kh6.anonymized_dp),
            min_route_companions(kh2.anonymized_dp));
  EXPECT_GE(route_anonymity_nr(kh6.anonymized_dp).average,
            route_anonymity_nr(kh2.anonymized_dp).average);
}

TEST(Metrics, MinRouteCompanions) {
  EXPECT_GE(min_route_companions(dp_of(make_figure2())), 1);
  EXPECT_EQ(min_route_companions(DataPlane{}), 0);
}

TEST(Metrics, TopologyMetricsMatchGraphModule) {
  const auto configs = make_fattree04();
  // FatTree04 with hosts excluded: 8 edge routers of degree 2, 8 aggs of
  // degree 4, 4 cores of degree 4 -> min class 8.
  EXPECT_EQ(topology_min_degree_class(configs), 8);
  // Fat trees have zero triangles.
  EXPECT_DOUBLE_EQ(topology_clustering(configs), 0.0);
}

TEST(Metrics, TwoLevelEqualsFlatForSingleDomain) {
  const auto configs = make_bics();
  EXPECT_EQ(topology_min_degree_class_two_level(configs),
            topology_min_degree_class(configs));
}

TEST(Metrics, TwoLevelUsesPerAsDegrees) {
  const auto configs = make_backbone();
  // Per-AS rings are regular: AS x/y are 4-cycles (class 4), AS z is a
  // 3-chain (degrees 1,2,1 -> min class 1), AS triangle-graph is regular.
  EXPECT_EQ(topology_min_degree_class_two_level(configs), 1);
}

TEST(Metrics, ConfigUtility) {
  LineStats original;
  original.other = 900;
  LineStats anonymized = original;
  anonymized.filter = 100;
  EXPECT_DOUBLE_EQ(config_utility(original, anonymized), 0.9);
  EXPECT_DOUBLE_EQ(config_utility(original, original), 1.0);
  EXPECT_DOUBLE_EQ(config_utility(LineStats{}, LineStats{}), 1.0);
}

TEST(Metrics, ExactlyKeptFraction) {
  DataPlane original;
  original.flows[{"a", "b"}] = {{"a", "r1", "b"}};
  original.flows[{"b", "a"}] = {{"b", "r1", "a"}};
  DataPlane anonymized = original;
  EXPECT_DOUBLE_EQ(DataPlane::exactly_kept_fraction(original, anonymized),
                   1.0);
  anonymized.flows[{"a", "b"}] = {{"a", "r2", "b"}};
  EXPECT_DOUBLE_EQ(DataPlane::exactly_kept_fraction(original, anonymized),
                   0.5);
  anonymized.flows.erase({"b", "a"});
  EXPECT_DOUBLE_EQ(DataPlane::exactly_kept_fraction(original, anonymized),
                   0.0);
  EXPECT_DOUBLE_EQ(DataPlane::exactly_kept_fraction(DataPlane{}, anonymized),
                   1.0);
}

TEST(Metrics, RestrictedToFiltersFakeFlows) {
  DataPlane dp;
  dp.flows[{"a", "b"}] = {{"a", "r1", "b"}};
  dp.flows[{"a", "b_1"}] = {{"a", "r1", "b_1"}};
  const auto restricted = dp.restricted_to({"a", "b"});
  EXPECT_EQ(restricted.flows.size(), 1u);
  EXPECT_EQ(restricted.path_count(), 1u);
}

}  // namespace
}  // namespace confmask
