#include <gtest/gtest.h>

#include "src/config/emit.hpp"
#include "src/config/model.hpp"
#include "src/util/strings.hpp"

namespace confmask {
namespace {

Ipv4Prefix pfx(const char* text) { return *Ipv4Prefix::parse(text); }

TEST(PrefixListEntry, ExactMatch) {
  PrefixListEntry entry{5, false, pfx("10.1.2.0/24"), {}, {}};
  EXPECT_TRUE(entry.matches(pfx("10.1.2.0/24")));
  EXPECT_FALSE(entry.matches(pfx("10.1.2.0/25")));  // longer, no le
  EXPECT_FALSE(entry.matches(pfx("10.1.0.0/16")));  // shorter
  EXPECT_FALSE(entry.matches(pfx("10.9.2.0/24")));  // different network
}

TEST(PrefixListEntry, LeGeRanges) {
  PrefixListEntry le_entry{5, true, pfx("0.0.0.0/0"), 32, {}};
  EXPECT_TRUE(le_entry.matches(pfx("10.1.2.0/24")));
  EXPECT_TRUE(le_entry.matches(pfx("0.0.0.0/0")));

  PrefixListEntry ge_entry{5, true, pfx("10.0.0.0/8"), {}, 24};
  EXPECT_TRUE(ge_entry.matches(pfx("10.1.2.0/24")));
  EXPECT_TRUE(ge_entry.matches(pfx("10.1.2.4/30")));
  EXPECT_FALSE(ge_entry.matches(pfx("10.1.0.0/16")));
}

TEST(PrefixList, FirstMatchWinsWithImplicitDeny) {
  PrefixList list{"L", {}};
  list.add_deny(pfx("10.1.2.0/24"));
  list.add_permit_all();
  EXPECT_FALSE(list.permits(pfx("10.1.2.0/24")));
  EXPECT_TRUE(list.permits(pfx("10.1.3.0/24")));

  PrefixList no_permit{"N", {}};
  no_permit.add_deny(pfx("10.1.2.0/24"));
  EXPECT_FALSE(no_permit.permits(pfx("10.9.9.0/24")));  // implicit deny
}

TEST(PrefixList, AddPermitAllIsIdempotent) {
  PrefixList list{"L", {}};
  list.add_permit_all();
  list.add_permit_all();
  EXPECT_EQ(list.entries.size(), 1u);
}

TEST(PrefixList, SequenceNumbersIncrease) {
  PrefixList list{"L", {}};
  list.add_deny(pfx("10.1.0.0/24"));
  list.add_deny(pfx("10.2.0.0/24"));
  EXPECT_LT(list.entries[0].seq, list.entries[1].seq);
}

TEST(RouterConfig, InterfaceLookupAndTowards) {
  RouterConfig router;
  router.hostname = "r1";
  InterfaceConfig eth0;
  eth0.name = "Ethernet0";
  eth0.address = Ipv4Address::parse("10.0.0.0");
  eth0.prefix_length = 31;
  router.interfaces.push_back(eth0);

  EXPECT_NE(router.find_interface("Ethernet0"), nullptr);
  EXPECT_EQ(router.find_interface("Ethernet9"), nullptr);
  const auto* towards =
      router.interface_towards(*Ipv4Address::parse("10.0.0.1"));
  ASSERT_NE(towards, nullptr);
  EXPECT_EQ(towards->name, "Ethernet0");
  EXPECT_EQ(router.interface_towards(*Ipv4Address::parse("10.9.0.1")),
            nullptr);
}

TEST(RouterConfig, FreshNamesDoNotCollide) {
  RouterConfig router;
  InterfaceConfig iface;
  iface.name = "Ethernet100";
  router.interfaces.push_back(iface);
  EXPECT_EQ(router.fresh_interface_name(), "Ethernet101");

  router.ensure_prefix_list("CMF_1");
  EXPECT_EQ(router.fresh_prefix_list_name("CMF"), "CMF_2");
}

TEST(RouterConfig, EnsurePrefixListReusesExisting) {
  RouterConfig router;
  auto& first = router.ensure_prefix_list("L");
  first.add_deny(pfx("10.0.0.0/24"));
  auto& second = router.ensure_prefix_list("L");
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(router.prefix_lists.size(), 1u);
}

TEST(OspfConfig, Covers) {
  OspfConfig ospf;
  ospf.networks.push_back(OspfNetwork{pfx("10.0.1.0/31"), 0});
  EXPECT_TRUE(ospf.covers(*Ipv4Address::parse("10.0.1.1")));
  EXPECT_FALSE(ospf.covers(*Ipv4Address::parse("10.0.2.1")));
}

TEST(RipConfig, ClassfulCovers) {
  RipConfig rip;
  rip.networks.push_back(*Ipv4Address::parse("10.0.0.0"));
  EXPECT_TRUE(rip.covers(*Ipv4Address::parse("10.200.1.1")));  // /8 classful
  EXPECT_FALSE(rip.covers(*Ipv4Address::parse("11.0.0.1")));
}

TEST(ConfigSet, UsedPrefixesAreDeduplicated) {
  ConfigSet configs;
  RouterConfig router;
  router.hostname = "r1";
  InterfaceConfig iface;
  iface.name = "Ethernet0";
  iface.address = Ipv4Address::parse("10.0.0.0");
  iface.prefix_length = 31;
  router.interfaces.push_back(iface);
  router.ospf = OspfConfig{};
  router.ospf->networks.push_back(OspfNetwork{pfx("10.0.0.0/31"), 0});
  configs.routers.push_back(router);

  const auto prefixes = configs.used_prefixes();
  EXPECT_EQ(prefixes.size(), 1u);
  EXPECT_EQ(prefixes[0].str(), "10.0.0.0/31");
}

TEST(LineStats, EmitterAndStatsAgree) {
  RouterConfig router;
  router.hostname = "r1";
  InterfaceConfig iface;
  iface.name = "Ethernet0";
  iface.address = Ipv4Address::parse("10.0.0.0");
  iface.prefix_length = 31;
  iface.ospf_cost = 5;
  iface.description = "to-r2";
  iface.extra_lines.push_back("traffic-policy mark inbound");
  router.interfaces.push_back(iface);
  router.ospf = OspfConfig{};
  router.ospf->networks.push_back(OspfNetwork{pfx("10.0.0.0/31"), 0});
  router.ospf->distribute_lists.push_back(DistributeList{"L", "Ethernet0"});
  auto& list = router.ensure_prefix_list("L");
  list.add_deny(pfx("10.128.0.0/24"));
  list.add_permit_all();

  const auto stats = router_line_stats(router);
  const auto text = emit_router(router);
  EXPECT_EQ(stats.total(), count_config_lines(text));
  EXPECT_EQ(stats.hostname, 1u);
  EXPECT_EQ(stats.interface, 5u);  // interface, address, cost, desc, extra
  EXPECT_EQ(stats.protocol, 2u);   // router ospf, network
  EXPECT_EQ(stats.filter, 3u);     // distribute-list + 2 prefix-list entries
}

TEST(LineStats, Arithmetic) {
  LineStats a;
  a.interface = 5;
  a.filter = 2;
  LineStats b;
  b.interface = 2;
  b.filter = 2;
  b.protocol = 1;
  a += b;
  EXPECT_EQ(a.interface, 7u);
  const auto diff = a - b;
  EXPECT_EQ(diff.interface, 5u);
  EXPECT_EQ(diff.protocol, 0u);
  EXPECT_EQ(a.total(), 12u);
}

}  // namespace
}  // namespace confmask
