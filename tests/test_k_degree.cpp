// Properties of the Liu-Terzi k-degree anonymization: the DP must produce
// a minimal, only-increasing, k-anonymous degree sequence, and the full
// pipeline must produce a simple supergraph that is k-degree anonymous.
#include "src/graph/k_degree_anonymize.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>

namespace confmask {
namespace {

/// Exhaustive optimum: partition the descending-sorted sequence into
/// contiguous groups of size >= k, each raised to its group max.
long brute_force_cost(std::vector<int> sorted, std::size_t k,
                      std::size_t from = 0) {
  const std::size_t n = sorted.size();
  if (from == n) return 0;
  if (n - from < k) return 1L << 40;  // infeasible
  long best = 1L << 40;
  for (std::size_t size = k; size <= n - from; ++size) {
    long cost = 0;
    for (std::size_t i = from; i < from + size; ++i) {
      cost += sorted[from] - sorted[i];
    }
    const long rest = brute_force_cost(sorted, k, from + size);
    best = std::min(best, cost + rest);
  }
  return best;
}

long sequence_cost(const std::vector<int>& degrees,
                   const std::vector<int>& targets) {
  long cost = 0;
  for (std::size_t i = 0; i < degrees.size(); ++i) {
    cost += targets[i] - degrees[i];
  }
  return cost;
}

bool k_anonymous_multiset(const std::vector<int>& values, int k) {
  std::map<int, int> counts;
  for (int v : values) ++counts[v];
  return std::all_of(counts.begin(), counts.end(),
                     [&](const auto& kv) { return kv.second >= k; });
}

TEST(DegreeSequenceDp, NeverDecreasesAndIsKAnonymous) {
  Rng rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = static_cast<int>(rng.range(5, 40));
    const int k = static_cast<int>(rng.range(2, 6));
    std::vector<int> degrees;
    for (int i = 0; i < n; ++i) {
      degrees.push_back(static_cast<int>(rng.range(1, 12)));
    }
    const auto targets = anonymize_degree_sequence(degrees, k);
    ASSERT_EQ(targets.size(), degrees.size());
    for (std::size_t i = 0; i < degrees.size(); ++i) {
      EXPECT_GE(targets[i], degrees[i]);
    }
    EXPECT_TRUE(k_anonymous_multiset(targets, std::min(k, n)))
        << "trial " << trial;
  }
}

TEST(DegreeSequenceDp, MatchesBruteForceOptimum) {
  Rng rng(321);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = static_cast<int>(rng.range(4, 11));
    const int k = static_cast<int>(rng.range(2, 4));
    if (n < k) continue;
    std::vector<int> degrees;
    for (int i = 0; i < n; ++i) {
      degrees.push_back(static_cast<int>(rng.range(0, 9)));
    }
    auto sorted = degrees;
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    const long expected =
        brute_force_cost(sorted, static_cast<std::size_t>(k));
    const auto targets = anonymize_degree_sequence(degrees, k);
    EXPECT_EQ(sequence_cost(degrees, targets), expected) << "trial " << trial;
  }
}

TEST(DegreeSequenceDp, AlreadyAnonymousIsUnchanged) {
  const std::vector<int> degrees{3, 3, 3, 2, 2, 2};
  EXPECT_EQ(anonymize_degree_sequence(degrees, 3), degrees);
}

TEST(DegreeSequenceDp, PreservesInputOrder) {
  const std::vector<int> degrees{1, 5, 2, 5};
  const auto targets = anonymize_degree_sequence(degrees, 2);
  // The two 5s stay; the 1 and 2 group together at 2.
  EXPECT_EQ(targets, (std::vector<int>{2, 5, 2, 5}));
}

TEST(DegreeSequenceDp, EmptyAndSingleton) {
  EXPECT_TRUE(anonymize_degree_sequence({}, 3).empty());
  EXPECT_EQ(anonymize_degree_sequence({7}, 3), (std::vector<int>{7}));
}

class KDegreeAnonymizeProperty
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(KDegreeAnonymizeProperty, ProducesKAnonymousSupergraph) {
  const auto [n, k, seed] = GetParam();
  Rng graph_rng(seed);
  Graph graph(n);
  // Random connected-ish graph: spanning tree + extras.
  for (int v = 1; v < n; ++v) {
    graph.add_edge(v, static_cast<int>(graph_rng.below(
                          static_cast<std::uint64_t>(v))));
  }
  const int extras = static_cast<int>(graph_rng.range(0, n));
  for (int i = 0; i < extras; ++i) {
    const int u = static_cast<int>(graph_rng.below(static_cast<std::uint64_t>(n)));
    const int v = static_cast<int>(graph_rng.below(static_cast<std::uint64_t>(n)));
    graph.add_edge(u, v);
  }

  Rng anon_rng(seed ^ 0xDEADBEEF);
  const auto result = k_degree_anonymize(graph, k, anon_rng);

  // Apply the fake edges and check every promised property.
  Graph anonymized = graph;
  for (const auto& [u, v] : result.added_edges) {
    EXPECT_FALSE(graph.has_edge(u, v) && anonymized.has_edge(u, v) &&
                 !graph.has_edge(u, v))
        << "duplicate bookkeeping";
    EXPECT_TRUE(anonymized.add_edge(u, v))
        << "added edge duplicates an existing one";
  }
  EXPECT_TRUE(is_k_degree_anonymous(anonymized, std::min(k, n)))
      << "n=" << n << " k=" << k << " seed=" << seed;
  // Edge-addition only: all original edges still present.
  for (const auto& [u, v] : graph.edges()) {
    EXPECT_TRUE(anonymized.has_edge(u, v));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KDegreeAnonymizeProperty,
    ::testing::Combine(::testing::Values(5, 8, 13, 21, 40, 80),
                       ::testing::Values(2, 3, 6, 10),
                       ::testing::Values(1u, 7u, 42u)));

TEST(KDegreeAnonymize, RegularGraphNeedsNoEdges) {
  Graph square(4);
  square.add_edge(0, 1);
  square.add_edge(1, 2);
  square.add_edge(2, 3);
  square.add_edge(3, 0);
  Rng rng(5);
  const auto result = k_degree_anonymize(square, 4, rng);
  EXPECT_TRUE(result.added_edges.empty());
}

TEST(KDegreeAnonymize, KLargerThanNodeCountIsClamped) {
  Graph path(3);
  path.add_edge(0, 1);
  path.add_edge(1, 2);
  Rng rng(6);
  const auto result = k_degree_anonymize(path, 10, rng);
  Graph anonymized = path;
  for (const auto& [u, v] : result.added_edges) anonymized.add_edge(u, v);
  EXPECT_TRUE(is_k_degree_anonymous(anonymized, 3));
}

TEST(KDegreeAnonymize, EmptyGraph) {
  Rng rng(7);
  EXPECT_TRUE(k_degree_anonymize(Graph(0), 3, rng).added_edges.empty());
}

}  // namespace
}  // namespace confmask
