// The fleet layer end to end: tenant-scoped submissions across a ring of
// confmaskd daemons, peer-fetch on the sharded artifact cache, fair-share
// admission, and the degradation contract (peer trouble costs latency,
// never a failed job).
//
// Daemon-level tests run real daemons over real unix sockets in-process;
// scheduler-level tests drive JobScheduler directly so the deficit-round-
// robin and single-flight paths run under TSan in CI.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/config/emit.hpp"
#include "src/netgen/networks.hpp"
#include "src/service/client.hpp"
#include "src/service/daemon.hpp"
#include "src/service/job_scheduler.hpp"
#include "src/service/json_line.hpp"
#include "src/service/shard_ring.hpp"

namespace confmask {
namespace {

namespace fs = std::filesystem;

std::string unique_socket(const std::string& tag) {
  return "/tmp/confmaskd_" + tag + "_" + std::to_string(::getpid()) + ".sock";
}

fs::path fresh_cache_dir(const std::string& tag) {
  const fs::path dir = fs::path(testing::TempDir()) /
                       ("confmask_fleet_" + tag + std::to_string(::getpid()));
  fs::remove_all(dir);
  return dir;
}

bool await_up(const std::string& endpoint) {
  const std::string stats_line = JsonLineWriter{}.string("op", "stats").str();
  for (int i = 0; i < 250; ++i) {
    if (client_roundtrip(endpoint, stats_line)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

std::string submit_line(std::uint64_t seed, const std::string& tenant = "") {
  JsonLineWriter out;
  out.string("op", "submit")
      .string("configs", canonical_config_set_text(make_figure2()))
      .number("k_r", 2)
      .number("k_h", 2)
      .number_u64("seed", seed);
  if (!tenant.empty()) out.string("tenant", tenant);
  return out.str();
}

std::optional<std::string> wait_terminal(const std::string& endpoint,
                                         std::uint64_t job) {
  const std::string status_line =
      JsonLineWriter{}.string("op", "status").number_u64("job", job).str();
  for (int i = 0; i < 2'000; ++i) {
    const auto response = client_roundtrip(endpoint, status_line);
    if (!response) return std::nullopt;
    const auto parsed = parse_json_line(*response);
    if (!parsed) return std::nullopt;
    const auto state = get_string(*parsed, "state");
    if (!state) return std::nullopt;
    if (*state == "done" || *state == "failed" || *state == "cancelled") {
      return state;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return std::nullopt;
}

void request_shutdown(const std::string& endpoint) {
  (void)client_roundtrip(endpoint,
                         "{\"op\": \"shutdown\", \"mode\": \"cancel\"}");
}

/// Submits `line`, asserts acceptance, returns (job id, cache_key hex).
std::pair<std::uint64_t, std::string> submit_ok(const std::string& endpoint,
                                                const std::string& line) {
  const auto response = client_roundtrip(endpoint, line);
  EXPECT_TRUE(response.has_value());
  if (!response) return {0, ""};
  const auto parsed = parse_json_line(*response);
  EXPECT_TRUE(parsed.has_value()) << *response;
  if (!parsed) return {0, ""};
  EXPECT_EQ(get_bool(*parsed, "ok"), true) << *response;
  const auto job = get_u64(*parsed, "job");
  const auto key = get_string(*parsed, "cache_key");
  EXPECT_TRUE(job.has_value() && key.has_value()) << *response;
  return {job.value_or(0), std::string(key.value_or(""))};
}

std::uint64_t stat_u64(const std::string& endpoint, const std::string& key) {
  const auto response =
      client_roundtrip(endpoint, JsonLineWriter{}.string("op", "stats").str());
  EXPECT_TRUE(response.has_value());
  if (!response) return 0;
  const auto parsed = parse_json_line(*response);
  EXPECT_TRUE(parsed.has_value());
  if (!parsed) return 0;
  return get_u64(*parsed, key).value_or(0);
}

std::string result_configs(const std::string& endpoint, std::uint64_t job) {
  const auto response = client_roundtrip(
      endpoint,
      JsonLineWriter{}.string("op", "result").number_u64("job", job).str());
  EXPECT_TRUE(response.has_value());
  if (!response) return "";
  const auto parsed = parse_json_line(*response);
  EXPECT_TRUE(parsed.has_value());
  if (!parsed) return "";
  EXPECT_EQ(get_bool(*parsed, "ok"), true);
  return std::string(get_string(*parsed, "configs").value_or(""));
}

// Acceptance tests (a) and (c): a job submitted on daemon 1 and then on
// daemon 2 completes on daemon 2 via peer-fetch — byte-identical artifacts
// with ZERO simulations run there — while the same configs under another
// tenant key elsewhere and run cold (namespaces never share an entry).
TEST(Fleet, PeerHitIsByteIdenticalAndTenantScoped) {
  const std::string s1 = unique_socket("fleet1");
  const std::string s2 = unique_socket("fleet2");
  const std::vector<std::string> members = {s1, s2};

  Daemon::Options o1;
  o1.socket_path = s1;
  o1.cache_dir = fresh_cache_dir("fleet1");
  o1.peers = members;
  Daemon::Options o2;
  o2.socket_path = s2;
  o2.cache_dir = fresh_cache_dir("fleet2");
  o2.peers = members;
  Daemon d1(o1);
  Daemon d2(o2);
  std::thread t1([&d1] { EXPECT_EQ(d1.run(), 0); });
  std::thread t2([&d2] { EXPECT_EQ(d2.run(), 0); });
  ASSERT_TRUE(await_up(s1));
  ASSERT_TRUE(await_up(s2));

  // Seed d1's cache under tenant A, then pick a job whose cache key d1
  // OWNS — only those keys will d2's miss path look up on d1. Keys are
  // content-derived, so which seed lands on d1 is fixed forever; 8
  // candidates make "none on d1" impossible in practice. A NAMED tenant
  // on purpose: the peer-fetch validation compares the entry's recorded
  // tenant, so this pins tenant attribution through store/serve/fetch
  // (a store() that drops the tenant turns every named-tenant peer hit
  // into a silent miss).
  const RendezvousRing ring(members, s1);
  std::uint64_t seed_on_d1 = 0;
  std::uint64_t job_on_d1 = 0;
  for (std::uint64_t seed = 1; seed <= 8 && seed_on_d1 == 0; ++seed) {
    const auto [job, key_hex] = submit_ok(s1, submit_line(seed, "tenant-a"));
    ASSERT_EQ(wait_terminal(s1, job), "done");
    if (ring.owner(std::stoull(key_hex, nullptr, 16)) == s1) {
      seed_on_d1 = seed;
      job_on_d1 = job;
    }
  }
  ASSERT_NE(seed_on_d1, 0u) << "no candidate key owned by d1";

  // Same job on d2: local miss, owner is d1, peer-fetch serves it.
  const std::uint64_t sims_before = stat_u64(s2, "simulations");
  const auto [peer_job, peer_key] =
      submit_ok(s2, submit_line(seed_on_d1, "tenant-a"));
  ASSERT_EQ(wait_terminal(s2, peer_job), "done");
  EXPECT_EQ(stat_u64(s2, "simulations"), sims_before)
      << "peer hit must not simulate locally";
  EXPECT_GE(stat_u64(s2, "peer_hits"), 1u);
  EXPECT_GE(stat_u64(s2, "tenant:tenant-a:peer_hits"), 1u);
  const std::string via_peer = result_configs(s2, peer_job);
  const std::string direct = result_configs(s1, job_on_d1);
  ASSERT_FALSE(direct.empty());
  EXPECT_EQ(via_peer, direct) << "peer-fetched artifacts must be the bytes "
                                 "the owner published";

  // The SAME configs and seed under tenant "acme": the tenant is folded
  // into the key, so this is a different address — no peer hit, no shared
  // entry, a fresh local run on d2.
  const auto [acme_job, acme_key] =
      submit_ok(s2, submit_line(seed_on_d1, "acme"));
  EXPECT_NE(acme_key, peer_key);
  ASSERT_EQ(wait_terminal(s2, acme_job), "done");
  EXPECT_GT(stat_u64(s2, "simulations"), sims_before)
      << "a foreign-tenant submit must run cold";
  EXPECT_GE(stat_u64(s2, "tenant:acme:completed"), 1u);

  request_shutdown(s1);
  request_shutdown(s2);
  t1.join();
  t2.join();
  fs::remove_all(o1.cache_dir);
  fs::remove_all(o2.cache_dir);
}

// Acceptance test (d): a ring member that is simply gone (its socket was
// never bound) costs each remote-owned job one failed peer probe, after
// which the job computes locally and finishes "done" — never "failed".
TEST(Fleet, DeadPeerDegradesToLocalCompute) {
  const std::string live = unique_socket("fleetlive");
  const std::string dead = unique_socket("fleetdead");  // never bound

  Daemon::Options options;
  options.socket_path = live;
  options.cache_dir = fresh_cache_dir("dead");
  options.peers = {live, dead};
  options.peer_timeout_ms = 250;
  Daemon daemon(options);
  std::thread server([&daemon] { EXPECT_EQ(daemon.run(), 0); });
  ASSERT_TRUE(await_up(live));

  const RendezvousRing ring({live, dead}, live);
  int remote_owned = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto [job, key_hex] = submit_ok(live, submit_line(seed));
    if (ring.owner(std::stoull(key_hex, nullptr, 16)) == dead) {
      ++remote_owned;
    }
    ASSERT_EQ(wait_terminal(live, job), "done")
        << "a dead peer must never fail a job (seed " << seed << ")";
  }
  // Every remote-owned key probed the dead peer exactly once; local keys
  // never did. (At least one of 8 keys lands remote — content-derived and
  // fixed, so this is a build-time fact, not a flake.)
  ASSERT_GE(remote_owned, 1);
  EXPECT_EQ(stat_u64(live, "peer_misses"),
            static_cast<std::uint64_t>(remote_owned));
  EXPECT_EQ(stat_u64(live, "peer_hits"), 0u);

  request_shutdown(live);
  server.join();
  fs::remove_all(options.cache_dir);
}

// Per-tenant admission quotas plus the SIGHUP-style reload: a capped
// tenant's overflow is rejected with a retry hint while another tenant
// still admits instantly, and swapping the quota table at runtime
// (Daemon::request_reload — the test-callable spelling of SIGHUP) lifts
// the cap without a restart.
TEST(Fleet, QuotaRejectsWithRetryHintAndReloadLiftsTheCap) {
  const std::string sock = unique_socket("quota");
  const fs::path tenants_file =
      fs::path(testing::TempDir()) /
      ("confmask_quota_" + std::to_string(::getpid()) + ".tenants");
  {
    std::FILE* f = std::fopen(tenants_file.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"tenant\": \"capped\", \"max_pending\": 1}\n", f);
    std::fclose(f);
  }

  Daemon::Options options;
  options.socket_path = sock;
  options.cache_dir = fresh_cache_dir("quota");
  options.max_concurrent_jobs = 1;
  options.tenants_file = tenants_file;
  Daemon daemon(options);
  std::thread server([&daemon] { EXPECT_EQ(daemon.run(), 0); });
  ASSERT_TRUE(await_up(sock));

  // Occupy the single worker with a slower network so submissions queue.
  const std::string blocker_line =
      JsonLineWriter{}
          .string("op", "submit")
          .string("configs", canonical_config_set_text(make_enterprise()))
          .number("k_r", 2)
          .number("k_h", 2)
          .number_u64("seed", 77)
          .string("tenant", "capped")
          .str();
  const auto [blocker, blocker_key] = submit_ok(sock, blocker_line);
  // Wait until the blocker occupies the worker — while it is merely queued
  // it would itself fill the tenant's pending slot.
  const std::string blocker_status =
      JsonLineWriter{}.string("op", "status").number_u64("job", blocker).str();
  for (int i = 0; i < 250; ++i) {
    const auto response = client_roundtrip(sock, blocker_status);
    ASSERT_TRUE(response.has_value());
    if (get_string(*parse_json_line(*response), "state") != "queued") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // One queued job fills the tenant's max_pending=1...
  const auto [queued, queued_key] = submit_ok(sock, submit_line(1, "capped"));
  // ...so the next is shed with the tenant-scoped error and a backoff hint.
  const auto rejected = client_roundtrip(sock, submit_line(2, "capped"));
  ASSERT_TRUE(rejected.has_value());
  const auto parsed = parse_json_line(*rejected);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(get_bool(*parsed, "ok"), false);
  EXPECT_NE(get_string(*parsed, "error").value_or("").find("tenant queue"),
            std::string::npos)
      << *rejected;
  EXPECT_GT(get_u64(*parsed, "retry_after_ms").value_or(0), 0u);
  EXPECT_GE(stat_u64(sock, "tenant:capped:rejected"), 1u);

  // The saturating tenant's pushback is ITS problem: an idle tenant's
  // submit admits immediately on the same daemon.
  const auto [other_job, other_key] = submit_ok(sock, submit_line(3, "other"));

  // Lift the cap and reload — the rejected job is admittable again.
  {
    std::FILE* f = std::fopen(tenants_file.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"tenant\": \"capped\", \"max_pending\": 8}\n", f);
    std::fclose(f);
  }
  daemon.request_reload();
  // The reload is consumed on the poll-loop tick; any roundtrip makes one.
  std::optional<std::pair<std::uint64_t, std::string>> readmitted;
  for (int i = 0; i < 250 && !readmitted; ++i) {
    const auto retry = client_roundtrip(sock, submit_line(2, "capped"));
    ASSERT_TRUE(retry.has_value());
    const auto reparsed = parse_json_line(*retry);
    ASSERT_TRUE(reparsed.has_value());
    if (get_bool(*reparsed, "ok") == true) {
      readmitted = {get_u64(*reparsed, "job").value_or(0), ""};
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(readmitted.has_value()) << "reload never lifted the quota";

  for (const std::uint64_t job :
       {blocker, queued, other_job, readmitted->first}) {
    EXPECT_EQ(wait_terminal(sock, job), "done");
  }
  request_shutdown(sock);
  server.join();
  fs::remove_all(options.cache_dir);
  fs::remove(tenants_file);
}

JobRequest make_job(std::uint64_t seed, const std::string& tenant,
                    bool enterprise = false) {
  JobRequest request;
  request.configs = enterprise ? make_enterprise() : make_figure2();
  request.options.k_r = 2;
  request.options.k_h = 2;
  request.options.seed = seed;
  request.tenant = tenant;
  return request;
}

// Acceptance test (b), at the scheduler layer so TSan sees it: a tenant
// saturating the queue cannot push an idle tenant's first job behind its
// backlog — deficit round-robin gives "quiet" a turn within one rotation,
// so quiet finishes while most of noisy's backlog is still waiting.
TEST(FleetScheduler, FairShareKeepsIdleTenantResponsive) {
  ArtifactCache cache(fresh_cache_dir("fair"), "stamp-fair");
  JobScheduler::Options options;
  options.max_concurrent_jobs = 1;
  std::mutex order_mutex;
  std::vector<std::string> completion_order;  // tenant per terminal event
  options.state_listener = [&](const JobStatus& status) {
    if (status.state == JobState::kDone) {
      const std::lock_guard<std::mutex> lock(order_mutex);
      completion_order.push_back(status.tenant);
    }
  };
  JobScheduler scheduler(&cache, options);

  // The blocker pins the single worker while the backlog forms.
  std::vector<std::uint64_t> jobs;
  const auto blocker = scheduler.submit_ex(make_job(77, "noisy", true));
  ASSERT_TRUE(blocker.accepted());
  jobs.push_back(*blocker.id);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto out = scheduler.submit_ex(make_job(seed, "noisy"));
    ASSERT_TRUE(out.accepted());
    jobs.push_back(*out.id);
  }
  const auto quiet = scheduler.submit_ex(make_job(9, "quiet"));
  ASSERT_TRUE(quiet.accepted());
  jobs.push_back(*quiet.id);

  for (const std::uint64_t id : jobs) ASSERT_TRUE(scheduler.wait(id));
  ASSERT_EQ(scheduler.status(*quiet.id)->state, JobState::kDone);
  // wait() observes the terminal state under the scheduler mutex, but the
  // state listener fires outside it — give the last event a moment to land.
  for (int i = 0; i < 500; ++i) {
    {
      const std::lock_guard<std::mutex> lock(order_mutex);
      if (completion_order.size() == jobs.size()) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  std::size_t quiet_position = 0;
  std::size_t noisy_after_quiet = 0;
  {
    const std::lock_guard<std::mutex> lock(order_mutex);
    ASSERT_EQ(completion_order.size(), jobs.size());
    for (std::size_t i = 0; i < completion_order.size(); ++i) {
      if (completion_order[i] == "quiet") quiet_position = i;
    }
    for (std::size_t i = quiet_position + 1; i < completion_order.size();
         ++i) {
      if (completion_order[i] == "noisy") ++noisy_after_quiet;
    }
  }
  // Round-robin with equal weights: quiet runs second or third overall
  // (after the in-flight blocker and at most one noisy quantum), never
  // behind the whole backlog. "At least 3 of 6 noisy jobs after quiet"
  // holds for every legal DRR interleaving but fails any FIFO regression.
  EXPECT_GE(noisy_after_quiet, 3u)
      << "quiet tenant finished " << quiet_position + 1 << " of "
      << completion_order.size() << " — starved behind the noisy backlog";

  scheduler.shutdown(JobScheduler::ShutdownMode::kDrain);
  fs::remove_all(cache.root());
}

// Single-flight dedup: two concurrent submissions of the SAME key elect
// one leader; the other completes from the freshly published entry. Both
// finish "done", and exactly one pipeline ever runs — in every legal
// interleaving (leader+follower, or hit-after-done).
TEST(FleetScheduler, SingleFlightRunsOnePipelinePerKey) {
  // Reference: the exact simulation count of ONE solo run of this key
  // (pipelines run several simulations internally, so "one pipeline"
  // cannot be asserted as simulations == 1).
  std::uint64_t solo_simulations = 0;
  {
    ArtifactCache ref_cache(fresh_cache_dir("flightref"), "stamp-flight");
    JobScheduler reference(&ref_cache, {});
    const auto solo = reference.submit_ex(make_job(4, "acme"));
    ASSERT_TRUE(solo.accepted());
    ASSERT_TRUE(reference.wait(*solo.id));
    ASSERT_EQ(reference.status(*solo.id)->state, JobState::kDone);
    solo_simulations = reference.stats().simulations;
    reference.shutdown(JobScheduler::ShutdownMode::kDrain);
    fs::remove_all(ref_cache.root());
  }
  ASSERT_GT(solo_simulations, 0u);

  ArtifactCache cache(fresh_cache_dir("flight"), "stamp-flight");
  JobScheduler::Options options;
  options.max_concurrent_jobs = 2;
  JobScheduler scheduler(&cache, options);

  const auto first = scheduler.submit_ex(make_job(4, "acme"));
  const auto second = scheduler.submit_ex(make_job(4, "acme"));
  ASSERT_TRUE(first.accepted());
  ASSERT_TRUE(second.accepted());
  ASSERT_TRUE(scheduler.wait(*first.id));
  ASSERT_TRUE(scheduler.wait(*second.id));
  EXPECT_EQ(scheduler.status(*first.id)->state, JobState::kDone);
  EXPECT_EQ(scheduler.status(*second.id)->state, JobState::kDone);

  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.simulations, solo_simulations)
      << "twin submissions of one key must share one pipeline run";
  EXPECT_EQ(stats.cache.stores, 1u);
  const auto lhs = scheduler.result(*first.id);
  const auto rhs = scheduler.result(*second.id);
  ASSERT_TRUE(lhs && rhs);
  EXPECT_EQ(lhs->artifacts.anonymized_configs, rhs->artifacts.anonymized_configs);

  scheduler.shutdown(JobScheduler::ShutdownMode::kDrain);
  fs::remove_all(cache.root());
}

// The scheduler-level peer path: every key owned by the (fake) remote
// member asks the callback first; a callback that cannot serve (nullopt —
// the timeout/transport case) degrades to local compute, and a callback
// that CAN serve completes the job with zero local simulations.
TEST(FleetScheduler, PeerCallbackMissComputesAndHitCompletes) {
  ArtifactCache cache(fresh_cache_dir("peercb"), "stamp-peer");
  const RendezvousRing ring({"self", "remote"}, "self");

  std::atomic<int> asked{0};
  std::optional<CacheArtifacts> canned;  // what the fake peer serves
  std::mutex canned_mutex;
  JobScheduler::Options options;
  options.max_concurrent_jobs = 1;
  options.ring = &ring;
  options.peer_fetch = [&](const std::string& owner, const CacheKey& key,
                           const std::string& tenant)
      -> std::optional<CacheArtifacts> {
    EXPECT_EQ(owner, "remote");
    EXPECT_EQ(tenant, "default");
    (void)key;
    asked.fetch_add(1);
    const std::lock_guard<std::mutex> lock(canned_mutex);
    return canned;
  };
  JobScheduler scheduler(&cache, options);

  // Find seeds on either side of the ring by keying submissions and
  // checking ownership of the keys the scheduler reports.
  std::uint64_t remote_seed = 0;
  std::vector<std::uint64_t> jobs;
  for (std::uint64_t seed = 1; seed <= 8 && remote_seed == 0; ++seed) {
    const auto out = scheduler.submit_ex(make_job(seed, "default"));
    ASSERT_TRUE(out.accepted());
    jobs.push_back(*out.id);
    ASSERT_TRUE(scheduler.wait(*out.id));
    ASSERT_EQ(scheduler.status(*out.id)->state, JobState::kDone);
    const std::string hex = scheduler.status(*out.id)->cache_key;
    if (!ring.self_owns(std::stoull(hex, nullptr, 16))) remote_seed = seed;
  }
  ASSERT_NE(remote_seed, 0u) << "no key owned by the remote member";
  const SchedulerStats after_miss = scheduler.stats();
  EXPECT_EQ(after_miss.peer_misses, static_cast<std::uint64_t>(asked.load()));
  EXPECT_GE(after_miss.peer_misses, 1u);
  EXPECT_EQ(after_miss.peer_hits, 0u);

  // Now the peer can serve: replay the remote-owned job under a NEW tenant
  // (fresh key, same owner side is not guaranteed — so brute-force a
  // remote-owned key again) with the callback returning real artifacts.
  const auto donor = scheduler.result(jobs.front());
  ASSERT_TRUE(donor.has_value());
  {
    const std::lock_guard<std::mutex> lock(canned_mutex);
    canned = donor->artifacts;
  }
  std::uint64_t hit_job = 0;
  for (std::uint64_t seed = 100; seed <= 116 && hit_job == 0; ++seed) {
    const auto out = scheduler.submit_ex(make_job(seed, "default"));
    ASSERT_TRUE(out.accepted());
    ASSERT_TRUE(scheduler.wait(*out.id));
    const auto status = scheduler.status(*out.id);
    ASSERT_EQ(status->state, JobState::kDone);
    if (!ring.self_owns(std::stoull(status->cache_key, nullptr, 16))) {
      hit_job = *out.id;
    }
  }
  ASSERT_NE(hit_job, 0u);
  const SchedulerStats after_hit = scheduler.stats();
  EXPECT_GE(after_hit.peer_hits, 1u);
  const auto served = scheduler.result(hit_job);
  ASSERT_TRUE(served.has_value());
  EXPECT_EQ(served->artifacts.anonymized_configs,
            donor->artifacts.anonymized_configs)
      << "a peer hit must republish the owner's exact bytes";

  scheduler.shutdown(JobScheduler::ShutdownMode::kDrain);
  fs::remove_all(cache.root());
}

}  // namespace
}  // namespace confmask
