// Rendezvous (highest-random-weight) shard ring: the properties the fleet
// cache leans on. Ownership must be DETERMINISTIC across daemon restarts
// (same membership → same owner for every key, no persisted state),
// BALANCED (no member becomes the fleet's hot spot), and MINIMALLY
// DISRUPTED by membership changes (a join/leave moves only the keys whose
// owner changed — the rendezvous guarantee that makes rolling restarts
// cheap: everything else keeps hitting its old owner's cache).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/service/shard_ring.hpp"

namespace confmask {
namespace {

std::vector<std::uint64_t> test_keys(std::size_t count) {
  std::vector<std::uint64_t> keys;
  keys.reserve(count);
  // splitmix64 walk: arbitrary but fixed, spread over the full 64 bits —
  // the same character cache-key primaries have.
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    keys.push_back(z ^ (z >> 31));
  }
  return keys;
}

TEST(ShardRing, SelfIsAddedAndDeduplicated) {
  const RendezvousRing explicit_self({"/tmp/a.sock", "/tmp/b.sock"},
                                     "/tmp/a.sock");
  EXPECT_EQ(explicit_self.size(), 2u);
  const RendezvousRing implicit_self({"/tmp/a.sock", "/tmp/b.sock"},
                                     "/tmp/c.sock");
  EXPECT_EQ(implicit_self.size(), 3u);
  EXPECT_EQ(implicit_self.self(), "/tmp/c.sock");

  const RendezvousRing duplicates(
      {"/tmp/a.sock", "/tmp/a.sock", "/tmp/b.sock"}, "/tmp/b.sock");
  EXPECT_EQ(duplicates.size(), 2u);
}

TEST(ShardRing, SoloRingOwnsEverything) {
  const RendezvousRing solo({}, "/tmp/only.sock");
  EXPECT_TRUE(solo.solo());
  for (const std::uint64_t key : test_keys(32)) {
    EXPECT_EQ(solo.owner(key), "/tmp/only.sock");
    EXPECT_TRUE(solo.self_owns(key));
  }
}

// Restart determinism: ownership is a pure function of (membership, key).
// Peer order on the command line must not matter — daemons in one fleet
// may list the same members in different orders.
TEST(ShardRing, OwnerIsDeterministicAcrossRestartsAndPeerOrder) {
  const std::vector<std::string> members = {"/run/d1.sock", "/run/d2.sock",
                                            "/run/d3.sock"};
  const RendezvousRing first(members, "/run/d1.sock");
  const RendezvousRing again(members, "/run/d1.sock");  // "restart"
  const RendezvousRing shuffled({"/run/d3.sock", "/run/d1.sock"},
                                "/run/d2.sock");
  ASSERT_EQ(shuffled.size(), 3u);
  for (const std::uint64_t key : test_keys(1'000)) {
    const std::string& owner = first.owner(key);
    EXPECT_EQ(again.owner(key), owner);
    EXPECT_EQ(shuffled.owner(key), owner);
  }
}

// Every member agrees who owns a key — the property peer-fetch relies on:
// the fetching daemon and the serving daemon compute the same owner.
TEST(ShardRing, AllMembersAgreeOnOwnership) {
  const std::vector<std::string> members = {"/run/d1.sock", "/run/d2.sock",
                                            "/run/d3.sock"};
  std::vector<RendezvousRing> views;
  for (const auto& self : members) views.emplace_back(members, self);
  for (const std::uint64_t key : test_keys(200)) {
    const std::string& owner = views[0].owner(key);
    for (const auto& view : views) EXPECT_EQ(view.owner(key), owner);
  }
}

// Balance over 1000 keys: with 4 members the expected share is 250; HRW
// with a finalized 64-bit score should stay well within ±40% of fair —
// loose enough to never flake, tight enough to catch a broken hash (a
// lexicographic-max bug concentrates everything on one member).
TEST(ShardRing, OwnershipIsBalancedAcrossAThousandKeys) {
  const std::vector<std::string> members = {"/run/a.sock", "/run/b.sock",
                                            "/run/c.sock", "/run/d.sock"};
  const RendezvousRing ring(members, members[0]);
  std::map<std::string, int> counts;
  const auto keys = test_keys(1'000);
  for (const std::uint64_t key : keys) ++counts[ring.owner(key)];
  ASSERT_EQ(counts.size(), members.size()) << "some member owns nothing";
  for (const auto& [member, count] : counts) {
    EXPECT_GE(count, 150) << member;
    EXPECT_LE(count, 350) << member;
  }
}

// The rendezvous guarantee: removing a member moves ONLY that member's
// keys (everything it did not own keeps its owner), and adding a member
// steals roughly its fair share — never reshuffles the rest.
TEST(ShardRing, MembershipChangesRemapMinimally) {
  const std::vector<std::string> three = {"/run/a.sock", "/run/b.sock",
                                          "/run/c.sock"};
  const std::vector<std::string> four = {"/run/a.sock", "/run/b.sock",
                                         "/run/c.sock", "/run/d.sock"};
  const RendezvousRing small(three, three[0]);
  const RendezvousRing big(four, four[0]);
  const auto keys = test_keys(1'000);

  int moved_on_join = 0;
  for (const std::uint64_t key : keys) {
    const std::string& before = small.owner(key);
    const std::string& after = big.owner(key);
    if (before != after) {
      // A key may only move TO the joiner, never between old members.
      EXPECT_EQ(after, "/run/d.sock");
      ++moved_on_join;
    }
  }
  // The joiner should steal ~1/4 of the space; assert a generous band.
  EXPECT_GE(moved_on_join, 100);
  EXPECT_LE(moved_on_join, 400);

  for (const std::uint64_t key : keys) {
    // Leave (the reverse direction): keys not owned by the leaver stay put.
    if (big.owner(key) != "/run/d.sock") {
      EXPECT_EQ(small.owner(key), big.owner(key));
    }
  }
}

// Scores are pure: same (endpoint, key) → same score, different endpoints
// almost surely different scores (the tie-break path exists but must not
// be the common case).
TEST(ShardRing, ScoreIsPureAndSpreads) {
  const std::uint64_t key = 0xDEADBEEFCAFEF00Dull;
  EXPECT_EQ(RendezvousRing::score("/run/a.sock", key),
            RendezvousRing::score("/run/a.sock", key));
  EXPECT_NE(RendezvousRing::score("/run/a.sock", key),
            RendezvousRing::score("/run/b.sock", key));
  EXPECT_NE(RendezvousRing::score("/run/a.sock", key),
            RendezvousRing::score("/run/a.sock", key + 1));
}

}  // namespace
}  // namespace confmask
