// Tenant namespaces: name validation, the json-line quota table, and the
// two isolation mechanisms underneath the fleet layer — the tenant folded
// into the cache-key digest (identical jobs under different tenants can
// never share an entry, by address) and the artifact cache's per-tenant
// byte shares (a tenant filling its share evicts from itself first).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>

#include "src/config/emit.hpp"
#include "src/netgen/networks.hpp"
#include "src/service/artifact_cache.hpp"
#include "src/service/cache_key.hpp"
#include "src/service/tenant.hpp"

namespace confmask {
namespace {

namespace fs = std::filesystem;

fs::path fresh_cache_dir(const std::string& tag) {
  const fs::path dir = fs::path(testing::TempDir()) /
                       ("confmask_tenant_" + tag + std::to_string(::getpid()));
  fs::remove_all(dir);
  return dir;
}

TEST(TenantNames, ValidationIsStrict) {
  EXPECT_TRUE(valid_tenant_name("default"));
  EXPECT_TRUE(valid_tenant_name("acme-corp.prod_2"));
  EXPECT_TRUE(valid_tenant_name("A"));
  EXPECT_TRUE(valid_tenant_name(std::string(64, 'x')));

  EXPECT_FALSE(valid_tenant_name(""));
  EXPECT_FALSE(valid_tenant_name("*"));  // reserved for the defaults line
  EXPECT_FALSE(valid_tenant_name(std::string(65, 'x')));
  EXPECT_FALSE(valid_tenant_name("has space"));
  EXPECT_FALSE(valid_tenant_name("slash/y"));  // '/' delimits trace tags
  EXPECT_FALSE(valid_tenant_name("quote\""));
  EXPECT_FALSE(valid_tenant_name("uni\xC3\xA9"));
}

TEST(TenantTable, ParsesQuotasDefaultsAndComments) {
  const std::string text =
      "# fleet quotas\n"
      "\n"
      "{\"tenant\": \"*\", \"max_pending\": 8}\n"
      "{\"tenant\": \"acme\", \"max_pending\": 2, \"max_concurrent\": 1, "
      "\"cache_share_bytes\": 4096, \"weight\": 3}\n"
      "  {\"tenant\": \"beta\", \"weight\": 0}\n";
  std::string error;
  const auto table = parse_tenant_table(text, &error);
  ASSERT_TRUE(table.has_value()) << error;

  EXPECT_EQ(table->quota_for("acme").max_pending, 2u);
  EXPECT_EQ(table->quota_for("acme").max_concurrent, 1);
  EXPECT_EQ(table->quota_for("acme").cache_share_bytes, 4096u);
  EXPECT_EQ(table->quota_for("acme").weight, 3);
  // weight 0 clamps to 1 (a zero quantum would starve the tenant forever).
  EXPECT_EQ(table->quota_for("beta").weight, 1);
  // Unnamed tenants inherit the "*" defaults.
  EXPECT_EQ(table->quota_for("unlisted").max_pending, 8u);
  EXPECT_EQ(table->quota_for("unlisted").max_concurrent, 0);

  const auto shares = table->cache_shares();
  ASSERT_EQ(shares.size(), 1u);
  EXPECT_EQ(shares.at("acme"), 4096u);
}

TEST(TenantTable, ErrorsNameTheLine) {
  std::string error;
  EXPECT_FALSE(parse_tenant_table("{\"max_pending\": 1}\n", &error));
  EXPECT_NE(error.find("tenants line 1"), std::string::npos) << error;
  EXPECT_NE(error.find("missing \"tenant\""), std::string::npos) << error;

  EXPECT_FALSE(parse_tenant_table(
      "{\"tenant\": \"a\"}\n{\"tenant\": \"b\", \"bogus\": 1}\n", &error));
  EXPECT_NE(error.find("tenants line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("unknown field"), std::string::npos) << error;

  EXPECT_FALSE(
      parse_tenant_table("{\"tenant\": \"a\", \"weight\": -2}\n", &error));
  EXPECT_NE(error.find("non-negative"), std::string::npos) << error;

  EXPECT_FALSE(parse_tenant_table(
      "{\"tenant\": \"a\"}\n{\"tenant\": \"a\"}\n", &error));
  EXPECT_NE(error.find("duplicate tenant"), std::string::npos) << error;

  EXPECT_FALSE(parse_tenant_table(
      "{\"tenant\": \"*\"}\n{\"tenant\": \"*\"}\n", &error));
  EXPECT_NE(error.find("duplicate \"*\""), std::string::npos) << error;

  EXPECT_FALSE(parse_tenant_table("{\"tenant\": \"no/slash\"}\n", &error));
  EXPECT_NE(error.find("invalid tenant name"), std::string::npos) << error;
}

// The isolation mechanism itself: the tenant is hashed into the digest, so
// identical inputs under different tenants produce different addresses —
// and the default tenant is exactly "no tenant named".
TEST(TenantCacheKeys, TenantIsFoldedIntoTheDigest) {
  const std::string bundle = canonical_config_set_text(make_figure2());
  const ConfMaskOptions options;
  const RetryPolicy policy;
  const CacheKey base = compute_cache_key(bundle, options, policy,
                                          EquivalenceStrategy::kConfMask);
  const CacheKey named = compute_cache_key(bundle, options, policy,
                                           EquivalenceStrategy::kConfMask,
                                           "acme");
  const CacheKey other = compute_cache_key(bundle, options, policy,
                                           EquivalenceStrategy::kConfMask,
                                           "beta");
  const CacheKey defaulted = compute_cache_key(bundle, options, policy,
                                               EquivalenceStrategy::kConfMask,
                                               "default");
  EXPECT_EQ(base, defaulted);
  EXPECT_NE(base, named);
  EXPECT_NE(named, other);
  // Length-prefixed encoding: "ab" + "c" can't collide with "a" + "bc".
  EXPECT_NE(compute_cache_key(bundle, options, policy,
                              EquivalenceStrategy::kConfMask, "ab"),
            compute_cache_key(bundle, options, policy,
                              EquivalenceStrategy::kConfMask, "a"));
}

CacheArtifacts make_artifacts(const std::string& tag) {
  CacheArtifacts artifacts;
  artifacts.anonymized_configs = "anon-" + tag;
  artifacts.original_configs = canonical_config_set_text(make_figure2());
  artifacts.diagnostics_json = "{\"tag\": \"" + tag + "\"}";
  artifacts.metrics_json = "{}";
  return artifacts;
}

TEST(TenantCache, EntriesRememberTheirTenantAndServePeerFetch) {
  ArtifactCache cache(fresh_cache_dir("roundtrip"), "stamp-1");
  CacheKey key;
  key.primary = 0x1111222233334444ull;
  key.secondary = 0x5555666677778888ull;
  const CacheArtifacts artifacts = make_artifacts("acme");
  ASSERT_EQ(cache.store(key, artifacts, nullptr, "acme"),
            StoreResult::kPublished);

  // lookup_by_hex (the peer-fetch read) returns the full key, the owning
  // tenant, and every artifact byte.
  const auto entry = cache.lookup_by_hex(key.hex());
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->key, key);
  EXPECT_EQ(entry->tenant, "acme");
  EXPECT_EQ(entry->artifacts.anonymized_configs,
            artifacts.anonymized_configs);
  EXPECT_EQ(entry->artifacts.original_configs, artifacts.original_configs);
  EXPECT_EQ(entry->artifacts.diagnostics_json, artifacts.diagnostics_json);
  EXPECT_EQ(entry->artifacts.metrics_json, artifacts.metrics_json);

  // A probe for a key nobody published is a quiet nullopt — no purge, no
  // miss counted (peers probing absent keys is normal fleet traffic).
  const CacheStats before = cache.stats();
  EXPECT_FALSE(cache.lookup_by_hex("00000000000000ff").has_value());
  EXPECT_EQ(cache.stats().misses, before.misses);

  // lookup_original is tenant-scoped: the right tenant resolves the diff
  // base, any other tenant gets a plain miss, never a disclosure.
  EXPECT_TRUE(cache.lookup_original(key.hex(), "acme").has_value());
  EXPECT_FALSE(cache.lookup_original(key.hex(), "beta").has_value());
  EXPECT_FALSE(cache.lookup_original(key.hex(), "default").has_value());
  // And the wrong-tenant miss did not destroy the entry.
  EXPECT_TRUE(cache.lookup_original(key.hex(), "acme").has_value());

  // Reopen: the tenant attribution survives the on-disk round trip.
  ArtifactCache reopened(cache.root(), "stamp-1");
  EXPECT_GT(reopened.tenant_bytes("acme"), 0u);
  const auto again = reopened.lookup_by_hex(key.hex());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->tenant, "acme");
}

TEST(TenantCache, ShareEvictionReclaimsFromTheOverSpenderFirst) {
  ArtifactCache cache(fresh_cache_dir("shares"), "stamp-1");
  const std::uint64_t one_entry = [&] {
    // Measure an entry's on-disk footprint once, so share thresholds can
    // be set in entries, not guessed bytes.
    CacheKey probe;
    probe.primary = 0xAAAA000000000001ull;
    probe.secondary = 1;
    // Tags are all 4 bytes so every entry has the same on-disk size.
    EXPECT_EQ(cache.store(probe, make_artifacts("prob"), nullptr, "acme"),
              StoreResult::kPublished);
    return cache.total_bytes();
  }();
  ASSERT_GT(one_entry, 0u);

  // acme may hold ~2 entries; beta is unshared.
  cache.set_tenant_shares({{"acme", 2 * one_entry + one_entry / 2}});

  CacheKey beta_key;
  beta_key.primary = 0xBBBB000000000001ull;
  beta_key.secondary = 2;
  ASSERT_EQ(cache.store(beta_key, make_artifacts("beta"), nullptr, "beta"),
            StoreResult::kPublished);

  for (int i = 2; i <= 4; ++i) {
    CacheKey key;
    key.primary = 0xAAAA000000000000ull + static_cast<std::uint64_t>(i);
    key.secondary = static_cast<std::uint64_t>(i);
    ASSERT_EQ(cache.store(key, make_artifacts("acme"), nullptr, "acme"),
              StoreResult::kPublished);
  }

  // acme got squeezed back under its share...
  EXPECT_LE(cache.tenant_bytes("acme"), 2 * one_entry + one_entry / 2);
  EXPECT_GT(cache.stats().evictions, 0u);
  // ...and beta's entry was never touched: over-share tenants reclaim
  // from themselves, not their neighbors.
  EXPECT_TRUE(cache.lookup_by_hex(beta_key.hex()).has_value());
  EXPECT_EQ(cache.tenant_bytes("beta"), one_entry);
}

}  // namespace
}  // namespace confmask
