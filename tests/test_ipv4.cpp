#include "src/util/ipv4.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace confmask {
namespace {

TEST(Ipv4Address, ParsesDottedQuad) {
  const auto addr = Ipv4Address::parse("10.25.17.25");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->str(), "10.25.17.25");
  EXPECT_EQ(addr->bits(), 0x0A191119u);
}

TEST(Ipv4Address, ParsesBoundaryValues) {
  EXPECT_EQ(Ipv4Address::parse("0.0.0.0")->bits(), 0u);
  EXPECT_EQ(Ipv4Address::parse("255.255.255.255")->bits(), 0xFFFFFFFFu);
}

TEST(Ipv4Address, RejectsMalformedInput) {
  EXPECT_FALSE(Ipv4Address::parse("").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10.0.0").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10.0.0.0.1").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10.0.0.256").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10.0.0.-1").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10.0.0.1x").has_value());
  EXPECT_FALSE(Ipv4Address::parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10..0.1").has_value());
}

TEST(Ipv4Address, RejectsLeadingZeroOctets) {
  // "010" is octal 8 on some stacks and decimal 10 on others; router-config
  // semantics reject the spelling outright.
  EXPECT_FALSE(Ipv4Address::parse("010.0.0.1").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10.0.0.01").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10.00.0.1").has_value());
  // A single "0" octet is still fine.
  EXPECT_TRUE(Ipv4Address::parse("0.0.0.0").has_value());
  EXPECT_TRUE(Ipv4Address::parse("10.0.0.1").has_value());
}

TEST(Ipv4Address, RejectsParserEdgeCases) {
  EXPECT_FALSE(Ipv4Address::parse(".10.0.0.1").has_value());   // empty octet
  EXPECT_FALSE(Ipv4Address::parse("10.0..1").has_value());     // empty octet
  EXPECT_FALSE(Ipv4Address::parse("10.0.0.1.").has_value());   // trailing dot
  EXPECT_FALSE(Ipv4Address::parse("10.0.0.").has_value());     // trailing dot
  EXPECT_FALSE(Ipv4Address::parse("10.0.0.0001").has_value()); // >3 digits
  EXPECT_FALSE(Ipv4Address::parse("1000.0.0.1").has_value());  // >3 digits
}

TEST(Ipv4Address, ClassfulLengths) {
  EXPECT_EQ(Ipv4Address::parse("10.1.2.3")->classful_prefix_length(), 8);
  EXPECT_EQ(Ipv4Address::parse("127.0.0.1")->classful_prefix_length(), 8);
  EXPECT_EQ(Ipv4Address::parse("128.0.0.1")->classful_prefix_length(), 16);
  EXPECT_EQ(Ipv4Address::parse("172.16.0.1")->classful_prefix_length(), 16);
  EXPECT_EQ(Ipv4Address::parse("192.168.1.1")->classful_prefix_length(), 24);
  EXPECT_EQ(Ipv4Address::parse("224.0.0.1")->classful_prefix_length(), 32);
}

TEST(Ipv4Prefix, CanonicalizesHostBits) {
  const Ipv4Prefix prefix{*Ipv4Address::parse("10.1.2.200"), 24};
  EXPECT_EQ(prefix.str(), "10.1.2.0/24");
}

TEST(Ipv4Prefix, ParseRoundTrip) {
  for (const char* text : {"0.0.0.0/0", "10.0.0.0/8", "10.1.2.0/24",
                           "10.0.0.2/31", "192.168.7.5/32"}) {
    const auto prefix = Ipv4Prefix::parse(text);
    ASSERT_TRUE(prefix.has_value()) << text;
    EXPECT_EQ(prefix->str(), text);
  }
}

TEST(Ipv4Prefix, RejectsMalformedInput) {
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/-1").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/2x").has_value());
}

TEST(Ipv4Prefix, FromMask) {
  const auto prefix = Ipv4Prefix::from_mask(*Ipv4Address::parse("10.1.2.3"),
                                            *Ipv4Address::parse("255.255.255.0"));
  ASSERT_TRUE(prefix.has_value());
  EXPECT_EQ(prefix->str(), "10.1.2.0/24");
  EXPECT_FALSE(Ipv4Prefix::from_mask(*Ipv4Address::parse("10.0.0.0"),
                                     *Ipv4Address::parse("255.0.255.0"))
                   .has_value());
}

TEST(Ipv4Prefix, FromWildcard) {
  const auto prefix = Ipv4Prefix::from_wildcard(
      *Ipv4Address::parse("10.0.1.0"), *Ipv4Address::parse("0.0.0.1"));
  ASSERT_TRUE(prefix.has_value());
  EXPECT_EQ(prefix->str(), "10.0.1.0/31");
}

TEST(Ipv4Prefix, MaskAndWildcard) {
  const Ipv4Prefix prefix{*Ipv4Address::parse("10.1.0.0"), 16};
  EXPECT_EQ(prefix.mask().str(), "255.255.0.0");
  EXPECT_EQ(prefix.wildcard().str(), "0.0.255.255");
}

TEST(Ipv4Prefix, Containment) {
  const auto p24 = *Ipv4Prefix::parse("10.1.2.0/24");
  EXPECT_TRUE(p24.contains(*Ipv4Address::parse("10.1.2.99")));
  EXPECT_FALSE(p24.contains(*Ipv4Address::parse("10.1.3.0")));
  EXPECT_TRUE(p24.contains(*Ipv4Prefix::parse("10.1.2.128/25")));
  EXPECT_FALSE(p24.contains(*Ipv4Prefix::parse("10.1.0.0/16")));
  EXPECT_TRUE(
      Ipv4Prefix::parse("0.0.0.0/0")->contains(*Ipv4Prefix::parse("10.0.0.0/8")));
}

TEST(Ipv4Prefix, Overlaps) {
  const auto a = *Ipv4Prefix::parse("10.1.0.0/16");
  const auto b = *Ipv4Prefix::parse("10.1.2.0/24");
  const auto c = *Ipv4Prefix::parse("10.2.0.0/16");
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
}

TEST(Ipv4Prefix, HostIndexing) {
  const auto lan = *Ipv4Prefix::parse("10.128.3.0/24");
  EXPECT_EQ(lan.host(1).str(), "10.128.3.1");
  EXPECT_EQ(lan.host(10).str(), "10.128.3.10");
}

TEST(Ipv4Prefix, HostIndexOutOfRangeThrows) {
  // An index wider than the host bits used to OR into the NEXT prefix
  // (10.128.3.0/24 host(256) == 10.128.2.0/24's space corrupted) — now it
  // throws instead of silently aliasing a neighbor.
  const auto lan = *Ipv4Prefix::parse("10.128.3.0/24");
  EXPECT_EQ(lan.host(255).str(), "10.128.3.255");
  EXPECT_THROW((void)lan.host(256), std::out_of_range);
  const auto p2p = *Ipv4Prefix::parse("10.0.0.2/31");
  EXPECT_EQ(p2p.host(1).str(), "10.0.0.3");
  EXPECT_THROW((void)p2p.host(2), std::out_of_range);
  const auto host_route = *Ipv4Prefix::parse("10.0.0.7/32");
  EXPECT_EQ(host_route.host(0).str(), "10.0.0.7");
  EXPECT_THROW((void)host_route.host(1), std::out_of_range);
  // /0 has 32 host bits: every index is in range.
  const Ipv4Prefix any{Ipv4Address{0u}, 0};
  EXPECT_EQ(any.host(0xFFFFFFFFu).str(), "255.255.255.255");
}

TEST(Ipv4Prefix, ZeroLengthMatchesEverything) {
  const Ipv4Prefix any{Ipv4Address{0u}, 0};
  EXPECT_TRUE(any.contains(*Ipv4Address::parse("255.1.2.3")));
  EXPECT_EQ(any.mask_bits(), 0u);
}

}  // namespace
}  // namespace confmask
