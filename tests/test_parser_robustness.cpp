// Parser robustness: a recipient of shared configurations feeds the
// parser arbitrary text. Mutated/truncated/garbled input must either
// parse (unknown lines are passthrough by design) or throw
// ConfigParseError — never crash, never mis-attribute.
#include <gtest/gtest.h>

#include "src/config/emit.hpp"
#include "src/config/parse.hpp"
#include "src/core/confmask.hpp"
#include "src/netgen/networks.hpp"
#include "src/util/rng.hpp"
#include "src/util/strings.hpp"

namespace confmask {
namespace {

/// Parse must terminate with a value or a ConfigParseError.
void expect_controlled(const std::string& text) {
  try {
    (void)parse_router(text);
  } catch (const ConfigParseError&) {
    // fine — controlled rejection
  }
}

class MutationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MutationFuzz, MutatedConfigsNeverCrashTheParser) {
  Rng rng(GetParam());
  const auto networks = evaluation_networks();
  for (int trial = 0; trial < 60; ++trial) {
    const auto& network =
        networks[static_cast<std::size_t>(rng.below(networks.size()))];
    const auto& router = network.configs.routers[static_cast<std::size_t>(
        rng.below(network.configs.routers.size()))];
    std::string text = emit_router(router);

    switch (rng.below(6)) {
      case 0: {  // truncate at a random byte
        text.resize(static_cast<std::size_t>(rng.below(text.size() + 1)));
        break;
      }
      case 1: {  // flip a random byte to a printable character
        if (!text.empty()) {
          text[static_cast<std::size_t>(rng.below(text.size()))] =
              static_cast<char>('!' + rng.below(90));
        }
        break;
      }
      case 2: {  // delete a random line
        auto lines = split(text, '\n');
        const auto victim = rng.below(lines.size());
        std::string rebuilt;
        for (std::size_t i = 0; i < lines.size(); ++i) {
          if (i == victim) continue;
          rebuilt += std::string(lines[i]) + "\n";
        }
        text = rebuilt;
        break;
      }
      case 3: {  // duplicate a random line
        auto lines = split(text, '\n');
        const auto victim = lines[static_cast<std::size_t>(
            rng.below(lines.size()))];
        text += std::string(victim) + "\n";
        break;
      }
      case 4: {  // strip all indentation (blocks collapse to top level)
        std::string rebuilt;
        for (const auto line : split(text, '\n')) {
          rebuilt += std::string(trim(line)) + "\n";
        }
        text = rebuilt;
        break;
      }
      case 5: {  // inject a half-formed known construct
        text += "ip prefix-list L seq\n";
        break;
      }
    }
    expect_controlled(text);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationFuzz,
                         ::testing::Values(101u, 202u, 303u, 404u));

TEST(ParserRobustness, AnonymizedOutputsOfAllNetworksRoundTrip) {
  // The anonymizer's full emitted surface (filters, prefix lists, fake
  // interfaces, fake hosts) must survive parse -> emit exactly.
  for (const auto& network : evaluation_networks()) {
    ConfMaskOptions options;
    options.seed = 0xF00D;
    const auto result = run_confmask(network.configs, options);
    for (const auto& router : result.anonymized.routers) {
      const auto text = emit_router(router);
      EXPECT_EQ(emit_router(parse_router(text)), text)
          << network.id << "/" << router.hostname;
    }
    for (const auto& host : result.anonymized.hosts) {
      const auto text = emit_host(host);
      EXPECT_EQ(emit_host(parse_host(text)), text)
          << network.id << "/" << host.hostname;
    }
  }
}

// Batch ingestion must be able to say WHICH configuration failed: the
// entry points attach the caller-provided source name to every
// ConfigParseError, prefix included in what().
TEST(ParserRobustness, ParseErrorsCarrySourceName) {
  const char* bad = "interface E0\n ip address 10.0.0.1 255.0.255.0\n";
  try {
    (void)parse_router(bad, "r7.cfg");
    FAIL() << "expected ConfigParseError";
  } catch (const ConfigParseError& error) {
    EXPECT_EQ(error.source(), "r7.cfg");
    EXPECT_EQ(error.line_number(), 2u);
    EXPECT_NE(std::string(error.what()).find("r7.cfg: line 2:"),
              std::string::npos);
  }
  try {
    (void)parse_host("hostname h1\n", "h1.cfg");
    FAIL() << "expected ConfigParseError";
  } catch (const ConfigParseError& error) {
    EXPECT_EQ(error.source(), "h1.cfg");
  }
  // Without a source the error is unchanged (back-compat).
  try {
    (void)parse_router(bad);
    FAIL() << "expected ConfigParseError";
  } catch (const ConfigParseError& error) {
    EXPECT_TRUE(error.source().empty());
    EXPECT_EQ(std::string(error.what()).find("r7.cfg"), std::string::npos);
  }
}

/// Expects parse_router(text) to throw a ConfigParseError whose message
/// contains `fragment` and names line 1.
void expect_acl_rejected(const std::string& text,
                         const std::string& fragment) {
  try {
    (void)parse_router(text);
    FAIL() << "expected ConfigParseError for: " << text;
  } catch (const ConfigParseError& error) {
    EXPECT_EQ(error.line_number(), 1u) << text;
    EXPECT_NE(std::string(error.what()).find(fragment), std::string::npos)
        << "message '" << error.what() << "' lacks '" << fragment
        << "' for: " << text;
  }
}

// Truncated access-list lines must throw, not silently fall through to
// extra_lines — a dropped ACL entry changes which packets the simulated
// interface filters.
TEST(ParserRobustness, TruncatedAccessListsAreRejected) {
  expect_acl_rejected("access-list\n", "missing list number");
  expect_acl_rejected("access-list 100\n", "missing permit/deny");
  expect_acl_rejected("access-list 100 permit\n", "missing protocol");
  expect_acl_rejected("access-list 100 permit ip\n", "missing ACL operand");
  expect_acl_rejected("access-list 100 permit ip any\n",
                      "missing ACL operand");
  expect_acl_rejected("access-list 100 permit ip 10.0.0.0\n",
                      "missing ACL wildcard");
  expect_acl_rejected("access-list 100 permit ip any 10.0.0.0\n",
                      "missing ACL wildcard");
}

TEST(ParserRobustness, MalformedAccessListsAreRejected) {
  expect_acl_rejected("access-list x permit ip any any\n", "acl number");
  expect_acl_rejected("access-list 100 allow ip any any\n",
                      "expected permit/deny");
  expect_acl_rejected("access-list 100 permit ip bogus 0.0.0.3 any\n",
                      "acl address");
  expect_acl_rejected("access-list 100 permit ip 10.0.0.0 0.0.3.0 any\n",
                      "non-contiguous ACL wildcard");
  expect_acl_rejected("access-list 100 permit ip any any extra\n",
                      "trailing tokens");
}

// Non-"ip" protocols are outside the model and stay passthrough; a parsed
// line lands in access_lists, not extra_lines.
TEST(ParserRobustness, AccessListDispatchBoundaries) {
  const auto tcp = parse_router("access-list 100 permit tcp any any\n");
  EXPECT_TRUE(tcp.access_lists.empty());
  ASSERT_EQ(tcp.extra_lines.size(), 1u);

  const auto ip = parse_router("access-list 100 deny ip any any\n");
  EXPECT_TRUE(ip.extra_lines.empty());
  ASSERT_EQ(ip.access_lists.size(), 1u);
  ASSERT_EQ(ip.access_lists[0].entries.size(), 1u);
  EXPECT_FALSE(ip.access_lists[0].entries[0].permit);
}

TEST(ParserRobustness, DuplicateDeviceMarkersAreRejectedWithBothLines) {
  // Last-wins merging would silently corrupt per-device cache digests, so
  // a bundle defining one name twice must be a hard parse error naming
  // both definition sites.
  const std::string bundle =
      "!>> device r0\nhostname r0\n"
      "!>> device r1\nhostname r1\n"
      "!>> device r0\nhostname r0\n";
  try {
    (void)parse_config_set(bundle);
    FAIL() << "duplicate marker accepted";
  } catch (const ConfigParseError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("duplicate device marker 'r0'"), std::string::npos)
        << what;
    EXPECT_NE(what.find("line 1"), std::string::npos) << what;
  }
  // Same name, different kinds (router vs would-be host section) is still
  // a duplicate: names are the cross-bundle join key.
  EXPECT_THROW(
      (void)parse_config_set("!>> device d\nhostname d\n"
                             "!>> device d\nhostname d\ninterface eth0\n"),
      ConfigParseError);
}

TEST(ParserRobustness, EmptyAndDegenerateInputs) {
  EXPECT_EQ(parse_router("").hostname, "");
  EXPECT_EQ(parse_router("!\n!\n!\n").interfaces.size(), 0u);
  EXPECT_EQ(parse_router("\n\n\n").extra_lines.size(), 0u);
  // A lone indented line at top level is passthrough, not a crash.
  const auto router = parse_router("  stray indented line\n");
  EXPECT_EQ(router.extra_lines.size(), 1u);
}

}  // namespace
}  // namespace confmask
