// Test-side helpers for the fault-injection harness (src/util/fault_points).
//
// Arm faults through ScopedFault so a failing assertion can never leak an
// armed fault into the next test: disarming happens in the destructor,
// unconditionally and globally.
//
// Arming counts are in units of FAILED PIPELINE RUNS for the throwing
// points (kPrefixPoolExhausted, kKDegreeInfeasible): each of those points
// is queried once per run before any real work, and a firing aborts the
// run — so arm(point, n) makes exactly the next n runs fail. The
// non-throwing points (kRouteEquivalenceNonConvergent, kVerificationDiverge)
// are queried once per completed run, so the unit is the same.
#pragma once

#include "src/util/fault_points.hpp"

#if !defined(CONFMASK_FAULT_INJECTION)
#error "fault-injection tests require -DCONFMASK_FAULT_INJECTION=ON"
#endif

namespace confmask {

class ScopedFault {
 public:
  ScopedFault(std::string_view point, int count) {
    faults::arm(point, count);
  }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
  ~ScopedFault() { faults::disarm_all(); }
};

}  // namespace confmask
