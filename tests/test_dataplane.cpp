// Direct DataPlane contract tests: diff() determinism (the divergence
// triples feed --diagnostics-json, which must be byte-stable across worker
// counts and insertion orders) and equals_restricted() (the verification
// gate's fast path, which must agree with restricted_to() == original in
// both failure directions).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/routing/dataplane.hpp"

namespace confmask {
namespace {

Path path(std::initializer_list<const char*> devices) {
  Path p;
  for (const char* device : devices) p.emplace_back(device);
  return p;
}

TEST(DataPlaneDiff, MissingFlowHopsAreSortedAndDeduped) {
  DataPlane lhs;
  // Three ECMP paths with unsorted, duplicated first hops: (r9, r1, r9).
  lhs.flows[{"h1", "h2"}] = {path({"h1", "r9", "r2", "h2"}),
                             path({"h1", "r1", "r2", "h2"}),
                             path({"h1", "r9", "r3", "h2"})};
  const DataPlane rhs;  // flow missing entirely on the rhs

  const auto entries = lhs.diff(rhs);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].source, "h1");
  EXPECT_EQ(entries[0].destination, "h2");
  EXPECT_TRUE(entries[0].router.empty());
  EXPECT_EQ(entries[0].lhs_next_hops, (std::vector<std::string>{"r1", "r9"}));
  EXPECT_TRUE(entries[0].rhs_next_hops.empty());

  // Mirrored direction: the present side's hops land in rhs_next_hops.
  const auto mirrored = rhs.diff(lhs);
  ASSERT_EQ(mirrored.size(), 1u);
  EXPECT_TRUE(mirrored[0].lhs_next_hops.empty());
  EXPECT_EQ(mirrored[0].rhs_next_hops,
            (std::vector<std::string>{"r1", "r9"}));
}

TEST(DataPlaneDiff, EntriesAreOrderedByFlowThenDevice) {
  DataPlane lhs, rhs;
  // Insert flows in reverse order; the report must come out in flow order
  // regardless (map iteration), with per-flow devices in name order.
  lhs.flows[{"h3", "h4"}] = {path({"h3", "r1", "h4"})};
  lhs.flows[{"h1", "h2"}] = {path({"h1", "r5", "r6", "h2"})};
  rhs.flows[{"h1", "h2"}] = {path({"h1", "r7", "r6", "h2"})};

  const auto entries = lhs.diff(rhs);
  ASSERT_EQ(entries.size(), 4u);
  // Flow (h1,h2) differs at h1 (r5 vs r7) and at each diverging router,
  // in device-name order; the missing flow (h3,h4) is reported after.
  EXPECT_EQ(entries[0].source, "h1");
  EXPECT_EQ(entries[0].router, "h1");
  EXPECT_EQ(entries[0].lhs_next_hops, (std::vector<std::string>{"r5"}));
  EXPECT_EQ(entries[0].rhs_next_hops, (std::vector<std::string>{"r7"}));
  EXPECT_EQ(entries[1].router, "r5");
  EXPECT_EQ(entries[2].router, "r7");
  EXPECT_EQ(entries[3].source, "h3");
  EXPECT_TRUE(entries[3].router.empty());
}

TEST(DataPlaneDiff, RepeatedCallsAreByteIdentical) {
  DataPlane lhs, rhs;
  lhs.flows[{"h2", "h1"}] = {path({"h2", "r2", "h1"})};
  lhs.flows[{"h1", "h2"}] = {path({"h1", "r1", "h2"}),
                             path({"h1", "r2", "h2"})};
  rhs.flows[{"h1", "h2"}] = {path({"h1", "r1", "h2"})};

  const auto first = lhs.diff(rhs, 16);
  const auto second = lhs.diff(rhs, 16);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << i;
  }
}

TEST(DataPlaneDiff, LimitTruncatesDeterministically) {
  DataPlane lhs;
  for (int i = 0; i < 8; ++i) {
    const std::string host = "h" + std::to_string(i);
    lhs.flows[{host, "hx"}] = {Path{host, "r1", "hx"}};
  }
  const DataPlane rhs;
  EXPECT_EQ(lhs.diff(rhs, 3).size(), 3u);
  EXPECT_EQ(lhs.diff(rhs, 0).size(), 0u);
  // The truncated report is a prefix of the full one.
  const auto full = lhs.diff(rhs, 100);
  const auto truncated = lhs.diff(rhs, 3);
  for (std::size_t i = 0; i < truncated.size(); ++i) {
    EXPECT_EQ(truncated[i], full[i]) << i;
  }
}

/// equals_restricted must agree with its definitional spelling.
void expect_consistent(const DataPlane& anonymized, const DataPlane& original,
                       const std::set<std::string>& hosts, bool expected,
                       const std::string& label) {
  EXPECT_EQ(anonymized.equals_restricted(original, hosts), expected) << label;
  EXPECT_EQ(anonymized.restricted_to(hosts) == original, expected)
      << label << " (restricted_to cross-check)";
}

TEST(DataPlaneEqualsRestricted, IgnoresFakeHostFlows) {
  DataPlane original;
  original.flows[{"h1", "h2"}] = {path({"h1", "r1", "h2"})};

  DataPlane anonymized = original;
  anonymized.flows[{"f1", "h1"}] = {path({"f1", "r9", "h1"})};
  anonymized.flows[{"h2", "f1"}] = {path({"h2", "r9", "f1"})};

  expect_consistent(anonymized, original, {"h1", "h2"}, true, "fake flows");
}

TEST(DataPlaneEqualsRestricted, RestrictedHoldsButFullFails) {
  // The restricted comparison passes while whole-plane equality fails —
  // exactly the Appendix-A situation fake hosts create.
  DataPlane original;
  original.flows[{"h1", "h2"}] = {path({"h1", "r1", "h2"})};
  DataPlane anonymized = original;
  anonymized.flows[{"f1", "h2"}] = {path({"f1", "r2", "h2"})};

  EXPECT_TRUE(anonymized.equals_restricted(original, {"h1", "h2"}));
  EXPECT_FALSE(anonymized == original);
}

TEST(DataPlaneEqualsRestricted, FullHoldsButRestrictedFails) {
  // Whole-plane equality holds, yet the restricted comparison fails:
  // `original` retains a flow whose endpoints fall outside the restriction
  // set, so restricted_to(hosts) can never reproduce it.
  DataPlane original;
  original.flows[{"h1", "h2"}] = {path({"h1", "r1", "h2"})};
  original.flows[{"h3", "h1"}] = {path({"h3", "r2", "h1"})};
  const DataPlane anonymized = original;

  EXPECT_TRUE(anonymized == original);
  expect_consistent(anonymized, original, {"h1", "h2"}, false,
                    "original keeps an out-of-set flow");
}

TEST(DataPlaneEqualsRestricted, DetectsMissingAndDivergentFlows) {
  DataPlane original;
  original.flows[{"h1", "h2"}] = {path({"h1", "r1", "h2"})};
  original.flows[{"h2", "h1"}] = {path({"h2", "r1", "h1"})};
  const std::set<std::string> hosts{"h1", "h2"};

  DataPlane missing = original;
  missing.flows.erase({"h2", "h1"});
  expect_consistent(missing, original, hosts, false, "missing flow");

  DataPlane divergent = original;
  divergent.flows[{"h1", "h2"}] = {path({"h1", "r2", "h2"})};
  expect_consistent(divergent, original, hosts, false, "divergent paths");

  // A path-multiplicity difference is a difference.
  DataPlane extra_path = original;
  extra_path.flows[{"h1", "h2"}].push_back(path({"h1", "r3", "h2"}));
  expect_consistent(extra_path, original, hosts, false, "extra ECMP path");
}

TEST(DataPlaneEqualsRestricted, EmptyCases) {
  const DataPlane empty;
  DataPlane original;
  expect_consistent(empty, original, {}, true, "both empty");
  expect_consistent(empty, original, {"h1"}, true, "empty with hosts");
  original.flows[{"h1", "h2"}] = {path({"h1", "r1", "h2"})};
  expect_consistent(empty, original, {"h1", "h2"}, false,
                    "anonymized empty, original not");
}

}  // namespace
}  // namespace confmask
