#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/util/prefix_allocator.hpp"
#include "src/util/rng.hpp"
#include "src/util/strings.hpp"

namespace confmask {
namespace {

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hello \t"), "hello");
  EXPECT_EQ(trim("\r\n"), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, SplitWs) {
  const auto tokens = split_ws("  ip   address 10.0.0.1 ");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "ip");
  EXPECT_EQ(tokens[2], "10.0.0.1");
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto fields = split("a\n\nb", '\n');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, CountConfigLines) {
  EXPECT_EQ(count_config_lines("hostname r1\n!\ninterface E0\n ip x\n!\n"),
            3u);
  EXPECT_EQ(count_config_lines(""), 0u);
  EXPECT_EQ(count_config_lines("!\n!\n"), 0u);
}

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = items;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(PrefixAllocator, SkipsReservedPrefixes) {
  PrefixAllocator alloc(*Ipv4Prefix::parse("172.20.0.0/24"),
                        *Ipv4Prefix::parse("100.96.0.0/16"));
  alloc.reserve(*Ipv4Prefix::parse("172.20.0.0/30"));
  const auto link = alloc.allocate_link();
  EXPECT_FALSE(Ipv4Prefix::parse("172.20.0.0/30")->overlaps(link));
  EXPECT_EQ(link.length(), 31);
}

TEST(PrefixAllocator, AllocationsAreDisjoint) {
  PrefixAllocator alloc;
  std::vector<Ipv4Prefix> all;
  for (int i = 0; i < 50; ++i) all.push_back(alloc.allocate_link());
  for (int i = 0; i < 50; ++i) all.push_back(alloc.allocate_host_lan());
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_FALSE(all[i].overlaps(all[j]))
          << all[i].str() << " vs " << all[j].str();
    }
  }
}

TEST(PrefixAllocator, AllocatesFromZeroLengthPool) {
  // Regression: capacity was computed as `1u << (32 - pool.length())`,
  // which for a /0 pool shifts a 32-bit value by 32 — undefined behavior
  // that in practice yielded capacity 1 and spurious exhaustion.
  PrefixAllocator alloc(*Ipv4Prefix::parse("0.0.0.0/0"),
                        *Ipv4Prefix::parse("128.0.0.0/1"));
  const auto link1 = alloc.allocate_link();
  const auto link2 = alloc.allocate_link();
  EXPECT_EQ(link1.length(), 31);
  EXPECT_EQ(link2.length(), 31);
  EXPECT_FALSE(link1.overlaps(link2));
  const auto lan1 = alloc.allocate_host_lan();
  const auto lan2 = alloc.allocate_host_lan();
  EXPECT_EQ(lan1.length(), 24);
  EXPECT_TRUE(Ipv4Prefix::parse("128.0.0.0/1")->contains(lan1));
  EXPECT_FALSE(lan1.overlaps(lan2));
  EXPECT_FALSE(lan1.overlaps(link1));
}

TEST(PrefixAllocator, ThrowsWhenPoolExhausted) {
  PrefixAllocator alloc(*Ipv4Prefix::parse("172.20.0.0/30"),
                        *Ipv4Prefix::parse("100.96.0.0/22"));
  (void)alloc.allocate_link();
  (void)alloc.allocate_link();
  EXPECT_THROW((void)alloc.allocate_link(), std::runtime_error);
}

}  // namespace
}  // namespace confmask
