// Config-bundle diffing for watch mode: filter-only vs structural
// classification, the acls_changed flag, conservative dirty-set scoping,
// and the confmask-diff/1 render/apply round trip with its error surface.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/config/diff.hpp"
#include "src/config/emit.hpp"
#include "src/config/parse.hpp"
#include "src/netgen/networks.hpp"
#include "src/util/ipv4.hpp"

namespace confmask {
namespace {

const Ipv4Prefix kDenied{Ipv4Address{10, 200, 200, 0}, 24};
const Ipv4Prefix kEverything{Ipv4Address{0u}, 0};

/// Binds a fresh prefix list (one deny, optional terminal permit-all) as
/// an OSPF distribute-list on the named router's first interface.
void bind_filter(ConfigSet& configs, const std::string& router_name,
                 bool permit_all) {
  RouterConfig* router = configs.find_router(router_name);
  ASSERT_NE(router, nullptr);
  ASSERT_TRUE(router->ospf.has_value());
  ASSERT_FALSE(router->interfaces.empty());
  PrefixList list;
  list.name = "DIFF-TEST";
  list.add_deny(kDenied);
  if (permit_all) list.add_permit_all();
  router->prefix_lists.push_back(std::move(list));
  router->ospf->distribute_lists.push_back(
      DistributeList{"DIFF-TEST", router->interfaces.front().name});
}

const DeviceChange* find_change(const ConfigSetDiff& diff,
                                const std::string& name,
                                DeviceChangeKind kind) {
  for (const DeviceChange& change : diff.devices) {
    if (change.name == name && change.kind == kind) return &change;
  }
  return nullptr;
}

bool dirty_covers(const std::vector<Ipv4Prefix>& dirty,
                  const Ipv4Prefix& target) {
  return std::any_of(dirty.begin(), dirty.end(), [&](const Ipv4Prefix& p) {
    return p.contains(target);
  });
}

TEST(ConfigDiff, IdenticalAndReorderedBundlesClassifyIdentical) {
  const ConfigSet base = make_figure2();
  EXPECT_EQ(diff_config_sets(base, base).klass, DiffClass::kIdentical);

  // Device order is canonicalized away: a reordered directory listing is
  // the same network, not an edit.
  ConfigSet reordered = base;
  std::reverse(reordered.routers.begin(), reordered.routers.end());
  std::reverse(reordered.hosts.begin(), reordered.hosts.end());
  const ConfigSetDiff diff = diff_config_sets(base, reordered);
  EXPECT_EQ(diff.klass, DiffClass::kIdentical);
  EXPECT_TRUE(diff.devices.empty());
}

TEST(ConfigDiff, BoundPrefixListEditIsFilterOnlyWithScopedDirtySet) {
  const ConfigSet base = make_figure2();
  ConfigSet next = base;
  bind_filter(next, "r2", /*permit_all=*/true);

  const ConfigSetDiff diff = diff_config_sets(base, next);
  EXPECT_EQ(diff.klass, DiffClass::kFilterOnly);
  EXPECT_FALSE(diff.acls_changed());
  const DeviceChange* change =
      find_change(diff, "r2", DeviceChangeKind::kModified);
  ASSERT_NE(change, nullptr);
  EXPECT_TRUE(change->filter_only);
  EXPECT_FALSE(change->acls_changed);
  // With a terminal permit-all, only destinations some deny entry can
  // match are dirty — the scope must cover the denied /24 but not widen
  // to the whole address space.
  EXPECT_TRUE(dirty_covers(change->dirty, kDenied));
  EXPECT_FALSE(dirty_covers(change->dirty, kEverything));
}

TEST(ConfigDiff, BindingWithoutPermitAllDirtiesEverything) {
  const ConfigSet base = make_figure2();
  ConfigSet next = base;
  bind_filter(next, "r2", /*permit_all=*/false);

  const ConfigSetDiff diff = diff_config_sets(base, next);
  EXPECT_EQ(diff.klass, DiffClass::kFilterOnly);
  const DeviceChange* change =
      find_change(diff, "r2", DeviceChangeKind::kModified);
  ASSERT_NE(change, nullptr);
  // No terminal permit-all: the list's implicit deny-all means the edit
  // can redirect ANY destination, so the dirty scope is 0.0.0.0/0.
  EXPECT_TRUE(dirty_covers(change->dirty, kEverything));
}

TEST(ConfigDiff, InPlaceListEditScopesToTheChangedMiddleRegion) {
  const Ipv4Prefix other{Ipv4Address{10, 77, 0, 0}, 16};
  ConfigSet base = make_figure2();
  bind_filter(base, "r2", /*permit_all=*/true);
  ConfigSet next = base;
  {
    RouterConfig* router = next.find_router("r2");
    ASSERT_NE(router, nullptr);
    PrefixList* list = router->find_prefix_list("DIFF-TEST");
    ASSERT_NE(list, nullptr);
    // Swap the deny target; the terminal permit-all is a common tail.
    list->entries.front().prefix = other;
  }

  const ConfigSetDiff diff = diff_config_sets(base, next);
  EXPECT_EQ(diff.klass, DiffClass::kFilterOnly);
  const DeviceChange* change =
      find_change(diff, "r2", DeviceChangeKind::kModified);
  ASSERT_NE(change, nullptr);
  // First-match-wins head/tail stripping: both versions of the changed
  // middle entry are in scope, the untouched permit-all tail is not.
  EXPECT_TRUE(dirty_covers(change->dirty, kDenied));
  EXPECT_TRUE(dirty_covers(change->dirty, other));
  EXPECT_FALSE(dirty_covers(change->dirty, kEverything));
}

TEST(ConfigDiff, AclEditIsFilterOnlyButFlagsAclsChanged) {
  const ConfigSet base = make_figure2();
  ConfigSet next = base;
  {
    RouterConfig* router = next.find_router("r3");
    ASSERT_NE(router, nullptr);
    ASSERT_FALSE(router->interfaces.empty());
    AccessList acl;
    acl.number = 101;
    acl.entries.push_back(AclEntry{false, Ipv4Prefix{Ipv4Address{0u}, 0},
                                   kDenied});
    router->access_lists.push_back(acl);
    router->interfaces.front().access_group_in = 101;
  }

  const ConfigSetDiff diff = diff_config_sets(base, next);
  // ACLs never move a FIB decision (filter-only, empty dirty set) but the
  // data plane changes shape — the flag consumers must rebuild on.
  EXPECT_EQ(diff.klass, DiffClass::kFilterOnly);
  EXPECT_TRUE(diff.acls_changed());
  const DeviceChange* change =
      find_change(diff, "r3", DeviceChangeKind::kModified);
  ASSERT_NE(change, nullptr);
  EXPECT_TRUE(change->filter_only);
  EXPECT_TRUE(change->acls_changed);
  EXPECT_TRUE(change->dirty.empty());
}

TEST(ConfigDiff, StructuralEditsFailClosed) {
  const ConfigSet base = make_figure2();

  // An interface address change reshapes the topology graph.
  ConfigSet readdressed = base;
  {
    RouterConfig* router = readdressed.find_router("r1");
    ASSERT_NE(router, nullptr);
    ASSERT_FALSE(router->interfaces.empty());
    router->interfaces.front().address = Ipv4Address{10, 99, 99, 1};
  }
  const ConfigSetDiff addr_diff = diff_config_sets(base, readdressed);
  EXPECT_EQ(addr_diff.klass, DiffClass::kStructural);
  const DeviceChange* change =
      find_change(addr_diff, "r1", DeviceChangeKind::kModified);
  ASSERT_NE(change, nullptr);
  EXPECT_FALSE(change->filter_only);

  // A removed device is structural however small the device was.
  ConfigSet shrunk = base;
  shrunk.hosts.erase(shrunk.hosts.begin());
  const ConfigSetDiff removed_diff = diff_config_sets(base, shrunk);
  EXPECT_EQ(removed_diff.klass, DiffClass::kStructural);
  EXPECT_FALSE(removed_diff.filter_only());
}

TEST(ConfigDiff, RenameWithoutContentChangeIsRemovePlusAdd) {
  const ConfigSet base = make_figure2();
  ConfigSet renamed = base;
  {
    RouterConfig* router = renamed.find_router("r4");
    ASSERT_NE(router, nullptr);
    router->hostname = "r4-renamed";
  }
  const ConfigSetDiff diff = diff_config_sets(base, renamed);
  // Names key simulation node ids; a rename must never alias the old
  // device's columns even when every other byte is unchanged.
  EXPECT_EQ(diff.klass, DiffClass::kStructural);
  EXPECT_NE(find_change(diff, "r4", DeviceChangeKind::kRemoved), nullptr);
  EXPECT_NE(find_change(diff, "r4-renamed", DeviceChangeKind::kAdded),
            nullptr);
}

TEST(ConfigDiff, HostExtraLinesAreFilterOnlyAddressingIsNot) {
  const ConfigSet base = make_figure2();

  ConfigSet annotated = base;
  annotated.hosts.front().extra_lines.push_back("! operator note");
  EXPECT_EQ(diff_config_sets(base, annotated).klass, DiffClass::kFilterOnly);

  ConfigSet regatewayed = base;
  regatewayed.hosts.front().gateway = Ipv4Address{10, 99, 99, 1};
  EXPECT_EQ(diff_config_sets(base, regatewayed).klass,
            DiffClass::kStructural);
}

TEST(BundleDiff, RenderApplyRoundTripsEveryChangeKind) {
  const ConfigSet base = make_figure2();
  ConfigSet next = base;
  bind_filter(next, "r2", /*permit_all=*/true);  // modify
  next.hosts.erase(next.hosts.begin());          // delete
  HostConfig added;                              // add
  added.hostname = "h9";
  added.address = Ipv4Address{10, 88, 0, 2};
  added.gateway = Ipv4Address{10, 88, 0, 1};
  next.hosts.push_back(added);

  const std::string diff_text = render_bundle_diff(base, next);
  EXPECT_EQ(diff_text.rfind(kBundleDiffHeader, 0), 0u);
  const ConfigSet patched = apply_bundle_diff(base, diff_text);
  EXPECT_EQ(canonical_config_set_text(patched),
            canonical_config_set_text(next));

  // An empty edit renders to a header-only diff and applies to the same
  // canonical bytes.
  const std::string empty_diff = render_bundle_diff(base, base);
  EXPECT_EQ(canonical_config_set_text(apply_bundle_diff(base, empty_diff)),
            canonical_config_set_text(base));
}

TEST(BundleDiff, MalformedDiffsAreRejectedWithParseErrors) {
  const ConfigSet base = make_figure2();

  EXPECT_THROW((void)apply_bundle_diff(base, "not a diff\n"),
               ConfigParseError);
  EXPECT_THROW(
      (void)apply_bundle_diff(
          base, std::string(kBundleDiffHeader) + "\n!<< delete nosuch\n"),
      ConfigParseError);
  EXPECT_THROW(
      (void)apply_bundle_diff(
          base, std::string(kBundleDiffHeader) + "\n!<< delete \n"),
      ConfigParseError);
  // A device both deleted and re-defined is ambiguous, not last-wins.
  EXPECT_THROW(
      (void)apply_bundle_diff(base, std::string(kBundleDiffHeader) +
                                        "\n!<< delete h1\n" +
                                        std::string(kDeviceMarker) +
                                        "h1\nhostname h1\n"),
      ConfigParseError);
  // Stray content between header and first section.
  EXPECT_THROW(
      (void)apply_bundle_diff(
          base, std::string(kBundleDiffHeader) + "\nhostname orphan\n"),
      ConfigParseError);
}

}  // namespace
}  // namespace confmask
