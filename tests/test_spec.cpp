#include "src/spec/policies.hpp"

#include <gtest/gtest.h>

#include "src/core/confmask.hpp"
#include "src/netgen/networks.hpp"
#include "src/nethide/nethide.hpp"
#include "src/routing/simulation.hpp"

namespace confmask {
namespace {

TEST(SpecMiner, MinesReachabilityWaypointLoadBalance) {
  DataPlane dp;
  dp.flows[{"a", "b"}] = {{"a", "r1", "r2", "b"}, {"a", "r1", "r3", "b"}};
  const auto policies = mine_policies(dp);

  EXPECT_TRUE(policies.count(
      Policy{Policy::Kind::kReachability, "a", "b", "", 0}));
  // r1 is on every path -> waypoint; r2/r3 are not.
  EXPECT_TRUE(
      policies.count(Policy{Policy::Kind::kWaypoint, "a", "b", "r1", 0}));
  EXPECT_FALSE(
      policies.count(Policy{Policy::Kind::kWaypoint, "a", "b", "r2", 0}));
  EXPECT_TRUE(
      policies.count(Policy{Policy::Kind::kLoadBalance, "a", "b", "", 2}));
  EXPECT_EQ(policies.size(), 3u);
}

TEST(SpecMiner, SinglePathFlowHasNoLoadBalancePolicy) {
  DataPlane dp;
  dp.flows[{"a", "b"}] = {{"a", "r1", "b"}};
  const auto policies = mine_policies(dp);
  for (const auto& policy : policies) {
    EXPECT_NE(policy.kind, Policy::Kind::kLoadBalance);
  }
}

TEST(SpecMiner, Figure2Waypoints) {
  const auto configs = make_figure2();
  const Simulation sim(configs);
  const auto policies = mine_policies(sim.extract_data_plane());
  // h1 -> h4 passes r1, r3, r2, r4 — all waypoints of that flow.
  for (const char* router : {"r1", "r3", "r2", "r4"}) {
    EXPECT_TRUE(policies.count(
        Policy{Policy::Kind::kWaypoint, "h1", "h4", router, 0}))
        << router;
  }
}

TEST(SpecComparisonTest, IdenticalSpecsKeepEverything) {
  const auto configs = make_figure2();
  const Simulation sim(configs);
  const auto policies = mine_policies(sim.extract_data_plane());
  const auto comparison = compare_policies(policies, policies, {"h1", "h2",
                                                                "h4"});
  EXPECT_DOUBLE_EQ(comparison.kept_fraction(), 1.0);
  EXPECT_EQ(comparison.missing, 0u);
  EXPECT_EQ(comparison.introduced, 0u);
}

TEST(SpecComparisonTest, ConfMaskKeepsAllSpecsIntroductionsAreFake) {
  const auto configs = make_fattree04();
  ConfMaskOptions options;
  options.seed = 61;
  const auto result = run_confmask(configs, options);

  const auto original = mine_policies(result.original_dp);
  const auto anonymized = mine_policies(result.anonymized_dp);
  std::set<std::string> real_hosts;
  for (const auto& host : configs.hosts) real_hosts.insert(host.hostname);

  const auto comparison =
      compare_policies(original, anonymized, real_hosts);
  // Functional equivalence => every original policy survives.
  EXPECT_DOUBLE_EQ(comparison.kept_fraction(), 1.0);
  // Introductions exist (fake hosts) and are overwhelmingly fake-related
  // (the paper reports 96.9%).
  EXPECT_GT(comparison.introduced, 0u);
  EXPECT_GT(comparison.introduced_fake_share(), 0.9);
}

TEST(SpecComparisonTest, NetHideLosesSpecs) {
  const auto configs = make_fattree04();
  const auto original_dp = [&] {
    const Simulation sim(configs);
    return sim.extract_data_plane();
  }();
  NetHideOptions options;
  options.k_r = 10;  // force fake links on the fat tree
  const auto nethide = run_nethide(configs, options);
  ASSERT_GT(nethide.fake_links, 0u);

  std::set<std::string> real_hosts;
  for (const auto& host : configs.hosts) real_hosts.insert(host.hostname);
  const auto comparison = compare_policies(mine_policies(original_dp),
                                           mine_policies(nethide.data_plane),
                                           real_hosts);
  EXPECT_LT(comparison.kept_fraction(), 1.0);
}

}  // namespace
}  // namespace confmask
