// JobScheduler: concurrent distinct jobs complete with their own
// diagnostics, resubmission is a byte-identical cache hit that runs zero
// simulations, admission control rejects loudly, failed jobs are never
// cached, and shutdown mid-queue leaves no partial cache entries. The
// concurrent tests are part of the TSan workload in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/netgen/networks.hpp"
#include "src/service/job_journal.hpp"
#include "src/service/job_scheduler.hpp"

namespace confmask {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / ("confmask_" + name);
  fs::remove_all(dir);
  return dir;
}

JobRequest figure2_request(std::uint64_t seed) {
  JobRequest request;
  request.configs = make_figure2();
  request.options.k_r = 2;
  request.options.k_h = 2;
  request.options.seed = seed;
  return request;
}

TEST(JobScheduler, ConcurrentDistinctJobsAllCompleteWithOwnDiagnostics) {
  ArtifactCache cache(fresh_dir("sched_concurrent"));
  JobScheduler::Options options;
  options.max_concurrent_jobs = 3;
  std::ostringstream trace_stream;
  obs::NdjsonSink sink(trace_stream);
  options.trace_sink = &sink;
  JobScheduler scheduler(&cache, options);

  std::vector<std::uint64_t> ids;
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const auto id = scheduler.submit(figure2_request(seed));
    ASSERT_TRUE(id.has_value());
    ids.push_back(*id);
  }
  std::vector<std::string> keys;
  for (const std::uint64_t id : ids) {
    ASSERT_TRUE(scheduler.wait(id));
    const auto status = scheduler.status(id);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->state, JobState::kDone) << "job " << id;
    EXPECT_FALSE(status->cache_hit) << "job " << id;
    keys.push_back(status->cache_key);
    const auto result = scheduler.result(id);
    ASSERT_TRUE(result.has_value());
    EXPECT_FALSE(result->artifacts.anonymized_configs.empty());
    // The job's own diagnostics artifact reports its success.
    EXPECT_NE(result->artifacts.diagnostics_json.find("\"ok\": true"),
              std::string::npos)
        << "job " << id;
    EXPECT_NE(result->artifacts.metrics_json.find("confmask.metrics/1"),
              std::string::npos);
  }
  // Distinct seeds → distinct cache keys → three stored entries.
  EXPECT_NE(keys[0], keys[1]);
  EXPECT_NE(keys[1], keys[2]);
  EXPECT_EQ(cache.entry_count(), 3u);

  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GT(stats.simulations, 0u);

  // Every trace line on the shared stream is attributed to some job.
  std::string line;
  std::istringstream lines(trace_stream.str());
  std::size_t traced = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.rfind("{\"job\": \"job-", 0), 0u) << line;
    ++traced;
  }
  EXPECT_GT(traced, 0u);
}

TEST(JobScheduler, ResubmitOfCompletedJobIsByteIdenticalCacheHit) {
  ArtifactCache cache(fresh_dir("sched_resubmit"));
  JobScheduler scheduler(&cache, {});

  const auto first = scheduler.submit(figure2_request(7));
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(scheduler.wait(*first));
  const auto first_status = scheduler.status(*first);
  ASSERT_TRUE(first_status.has_value());
  ASSERT_EQ(first_status->state, JobState::kDone);
  EXPECT_FALSE(first_status->cache_hit);
  const auto first_result = scheduler.result(*first);
  ASSERT_TRUE(first_result.has_value());
  const std::uint64_t sims_after_first = scheduler.stats().simulations;
  EXPECT_GT(sims_after_first, 0u);

  const auto second = scheduler.submit(figure2_request(7));
  ASSERT_TRUE(second.has_value());
  ASSERT_TRUE(scheduler.wait(*second));
  const auto second_status = scheduler.status(*second);
  ASSERT_TRUE(second_status.has_value());
  EXPECT_EQ(second_status->state, JobState::kDone);
  EXPECT_TRUE(second_status->cache_hit);
  EXPECT_EQ(second_status->cache_key, first_status->cache_key);

  // Byte-identical artifacts, zero additional simulations.
  const auto second_result = scheduler.result(*second);
  ASSERT_TRUE(second_result.has_value());
  EXPECT_TRUE(second_result->cache_hit);
  EXPECT_EQ(second_result->artifacts.anonymized_configs,
            first_result->artifacts.anonymized_configs);
  EXPECT_EQ(second_result->artifacts.diagnostics_json,
            first_result->artifacts.diagnostics_json);
  EXPECT_EQ(second_result->artifacts.metrics_json,
            first_result->artifacts.metrics_json);
  EXPECT_EQ(scheduler.stats().simulations, sims_after_first);
  EXPECT_EQ(scheduler.stats().cache.hits, 1u);
}

TEST(JobScheduler, DeviceOrderDoesNotDefeatTheCache) {
  ArtifactCache cache(fresh_dir("sched_order"));
  JobScheduler scheduler(&cache, {});
  const auto first = scheduler.submit(figure2_request(5));
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(scheduler.wait(*first));

  JobRequest reordered = figure2_request(5);
  std::reverse(reordered.configs.routers.begin(),
               reordered.configs.routers.end());
  const auto second = scheduler.submit(std::move(reordered));
  ASSERT_TRUE(second.has_value());
  ASSERT_TRUE(scheduler.wait(*second));
  const auto status = scheduler.status(*second);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kDone);
  EXPECT_TRUE(status->cache_hit);
}

TEST(JobScheduler, FailedJobsReportTaxonomyAndAreNeverCached) {
  ArtifactCache cache(fresh_dir("sched_failed"));
  JobScheduler scheduler(&cache, {});
  JobRequest doomed = figure2_request(1);
  // One equivalence iteration is never enough for Figure 2, and an empty
  // escalation ladder leaves the guarded driver no rung to climb: the run
  // fails closed with a deterministic NonConvergent verdict.
  doomed.options.max_equivalence_iterations = 1;
  doomed.policy.equivalence_iteration_ladder = {};
  doomed.policy.max_attempts = 1;
  const auto id = scheduler.submit(std::move(doomed));
  ASSERT_TRUE(id.has_value());
  ASSERT_TRUE(scheduler.wait(*id));
  const auto status = scheduler.status(*id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kFailed);
  EXPECT_FALSE(status->error_category.empty());
  EXPECT_GE(status->exit_code, 10);  // taxonomy band, not a generic 1
  // Failure diagnostics are available; configs are not (fail closed).
  const auto result = scheduler.result(*id);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->artifacts.anonymized_configs.empty());
  EXPECT_NE(result->artifacts.diagnostics_json.find("\"ok\": false"),
            std::string::npos);
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(scheduler.stats().failed, 1u);
}

TEST(JobScheduler, AdmissionControlRejectsBeyondMaxPending) {
  ArtifactCache cache(fresh_dir("sched_admission"));
  JobScheduler::Options options;
  options.max_pending = 0;  // every submission exceeds the pending budget
  JobScheduler scheduler(&cache, options);
  EXPECT_FALSE(scheduler.submit(figure2_request(1)).has_value());
  EXPECT_EQ(scheduler.stats().rejected, 1u);
  EXPECT_EQ(scheduler.stats().submitted, 0u);
}

TEST(JobScheduler, ShutdownMidQueueCancelsPendingAndLeavesNoPartialEntries) {
  const fs::path root = fresh_dir("sched_shutdown");
  ArtifactCache cache(root);
  JobScheduler::Options options;
  options.max_concurrent_jobs = 1;  // force a deep queue
  JobScheduler scheduler(&cache, options);
  std::vector<std::uint64_t> ids;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto id = scheduler.submit(figure2_request(seed));
    ASSERT_TRUE(id.has_value());
    ids.push_back(*id);
  }
  scheduler.shutdown(JobScheduler::ShutdownMode::kCancelPending);

  // Every job is terminal: the running ones completed (fail-closed jobs
  // are never abandoned mid-flight), the queued ones cancelled cleanly.
  std::size_t done = 0;
  std::size_t cancelled = 0;
  for (const std::uint64_t id : ids) {
    const auto status = scheduler.status(id);
    ASSERT_TRUE(status.has_value());
    if (status->state == JobState::kDone) {
      ++done;
    } else {
      EXPECT_EQ(status->state, JobState::kCancelled);
      ++cancelled;
    }
  }
  EXPECT_EQ(done + cancelled, ids.size());
  EXPECT_GT(cancelled, 0u);  // with 1 worker and 5 jobs, some were queued

  // The cache holds only COMPLETE entries — exactly one per done job, no
  // staging litter published, nothing half-written.
  EXPECT_EQ(cache.entry_count(), done);
  for (const auto& entry : fs::directory_iterator(root / "entries")) {
    EXPECT_TRUE(fs::exists(entry.path() / "meta.json"));
    EXPECT_TRUE(fs::exists(entry.path() / "anonymized.cfgset"));
    EXPECT_TRUE(fs::exists(entry.path() / "diagnostics.json"));
    EXPECT_TRUE(fs::exists(entry.path() / "metrics.json"));
  }

  // Post-shutdown submissions are rejected, not silently dropped.
  EXPECT_FALSE(scheduler.submit(figure2_request(9)).has_value());
}

TEST(JobScheduler, DrainShutdownFinishesQueuedJobs) {
  ArtifactCache cache(fresh_dir("sched_drain"));
  JobScheduler::Options options;
  options.max_concurrent_jobs = 1;
  JobScheduler scheduler(&cache, options);
  std::vector<std::uint64_t> ids;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto id = scheduler.submit(figure2_request(seed));
    ASSERT_TRUE(id.has_value());
    ids.push_back(*id);
  }
  scheduler.shutdown(JobScheduler::ShutdownMode::kDrain);
  for (const std::uint64_t id : ids) {
    const auto status = scheduler.status(id);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->state, JobState::kDone) << "job " << id;
  }
  EXPECT_EQ(cache.entry_count(), 3u);
}

TEST(JobScheduler, CancelDequeuesAQueuedJob) {
  ArtifactCache cache(fresh_dir("sched_cancel"));
  JobScheduler::Options options;
  options.max_concurrent_jobs = 1;
  JobScheduler scheduler(&cache, options);
  const auto first = scheduler.submit(figure2_request(1));
  const auto second = scheduler.submit(figure2_request(2));
  const auto third = scheduler.submit(figure2_request(3));
  ASSERT_TRUE(first && second && third);
  // With one worker, at least the LAST submission is still queued right
  // now — but any of them may have started; accept either outcome and
  // verify the invariant: cancel succeeds iff the job was queued.
  const bool cancelled = scheduler.cancel(*third);
  ASSERT_TRUE(scheduler.wait(*first));
  ASSERT_TRUE(scheduler.wait(*second));
  ASSERT_TRUE(scheduler.wait(*third));
  const auto status = scheduler.status(*third);
  ASSERT_TRUE(status.has_value());
  if (cancelled) {
    EXPECT_EQ(status->state, JobState::kCancelled);
    EXPECT_FALSE(scheduler.result(*third).has_value());
  } else {
    EXPECT_EQ(status->state, JobState::kDone);
  }
  EXPECT_FALSE(scheduler.cancel(*first));  // terminal jobs can't cancel
  EXPECT_FALSE(scheduler.cancel(9999));    // unknown id
}

TEST(JobScheduler, ExpiredDeadlineIsDeadlineExceededAndNeverCached) {
  ArtifactCache cache(fresh_dir("sched_deadline_queued"));
  JobScheduler::Options options;
  options.max_concurrent_jobs = 1;
  JobScheduler scheduler(&cache, options);
  // Occupy the single worker, then submit a job whose 1ms budget is
  // certain to expire while it waits in the queue: the deterministic
  // "already expired at dequeue" path.
  const auto busy = scheduler.submit(figure2_request(1));
  ASSERT_TRUE(busy.has_value());
  JobRequest doomed = figure2_request(2);
  doomed.deadline_ms = 1;
  const SubmitOutcome outcome = scheduler.submit_ex(std::move(doomed));
  ASSERT_TRUE(outcome.accepted());
  ASSERT_TRUE(scheduler.wait(*outcome.id));
  const auto status = scheduler.status(*outcome.id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kFailed);
  EXPECT_EQ(status->error_category, "DeadlineExceeded");
  EXPECT_EQ(status->exit_code, 15);
  EXPECT_EQ(scheduler.stats().deadline_exceeded, 1u);
  // Never cached — and failure diagnostics tell the whole story.
  const auto result = scheduler.result(*outcome.id);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->artifacts.anonymized_configs.empty());
  EXPECT_NE(result->artifacts.diagnostics_json.find("\"ok\": false"),
            std::string::npos);
  ASSERT_TRUE(scheduler.wait(*busy));
  EXPECT_EQ(cache.entry_count(), 1u);  // only the healthy job published

  // The daemon keeps serving: the next submission completes normally.
  const auto after = scheduler.submit(figure2_request(3));
  ASSERT_TRUE(after.has_value());
  ASSERT_TRUE(scheduler.wait(*after));
  EXPECT_EQ(scheduler.status(*after)->state, JobState::kDone);
}

TEST(JobScheduler, MidRunDeadlineExpiryStopsAtAPhaseBoundary) {
  ArtifactCache cache(fresh_dir("sched_deadline_midrun"));
  JobScheduler scheduler(&cache, {});
  // The worker is idle, so the job STARTS within its budget — but a
  // carrier-scale pipeline takes orders of magnitude longer than 2ms, so
  // expiry lands mid-run and the cooperative poll points must stop it at the
  // next phase boundary (a Figure 2 job would finish before the budget ran
  // out, turning this into a no-op test).
  JobRequest doomed;
  doomed.configs = make_uscarrier();
  doomed.options.k_r = 2;
  doomed.options.k_h = 2;
  doomed.options.seed = 4;
  doomed.deadline_ms = 2;
  const SubmitOutcome outcome = scheduler.submit_ex(std::move(doomed));
  ASSERT_TRUE(outcome.accepted());
  ASSERT_TRUE(scheduler.wait(*outcome.id));
  const auto status = scheduler.status(*outcome.id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kFailed);
  EXPECT_EQ(status->error_category, "DeadlineExceeded");
  EXPECT_EQ(status->exit_code, 15);
  EXPECT_EQ(cache.entry_count(), 0u);  // expired work is never published
  EXPECT_EQ(scheduler.stats().deadline_exceeded, 1u);
}

TEST(JobScheduler, CancelOfARunningJobStopsCooperatively) {
  ArtifactCache cache(fresh_dir("sched_cancel_running"));
  JobScheduler scheduler(&cache, {});
  const auto id = scheduler.submit(figure2_request(5));
  ASSERT_TRUE(id.has_value());
  // Wait until the job is actually RUNNING, then fire its token.
  for (int i = 0; i < 2000; ++i) {
    const auto status = scheduler.status(*id);
    ASSERT_TRUE(status.has_value());
    if (status->state != JobState::kQueued) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const bool accepted = scheduler.cancel(*id);
  ASSERT_TRUE(scheduler.wait(*id));
  const auto status = scheduler.status(*id);
  ASSERT_TRUE(status.has_value());
  if (accepted && status->state == JobState::kCancelled) {
    // The common path: the poll points observed the token mid-pipeline.
    EXPECT_EQ(status->error_category, "DeadlineExceeded");
    EXPECT_EQ(scheduler.stats().cancelled, 1u);
    EXPECT_EQ(cache.entry_count(), 0u);
  } else {
    // The benign race: the pipeline finished before (or exactly as) the
    // token fired. Completion must then be fully intact.
    EXPECT_EQ(status->state, JobState::kDone);
    EXPECT_EQ(cache.entry_count(), 1u);
  }
}

TEST(JobScheduler, QueueFullRejectionCarriesRetryAfterHint) {
  ArtifactCache cache(fresh_dir("sched_retry_after"));
  JobScheduler::Options options;
  options.max_pending = 0;  // every submission exceeds the pending budget
  options.retry_after_base_ms = 250;
  JobScheduler scheduler(&cache, options);
  const SubmitOutcome outcome = scheduler.submit_ex(figure2_request(1));
  EXPECT_FALSE(outcome.accepted());
  EXPECT_EQ(outcome.error, "queue full");
  // The hint is transient load-shedding advice: present, positive, and at
  // least the configured base.
  EXPECT_GE(outcome.retry_after_ms, 250u);
  EXPECT_LE(outcome.retry_after_ms, 10'000u);
  EXPECT_EQ(scheduler.stats().rejected, 1u);
}

TEST(JobScheduler, JournalRecoveryReEnqueuesAcknowledgedJobs) {
  const fs::path journal_path =
      fresh_dir("sched_recover_journal") / "jobs.wal";
  const fs::path cache_dir = fresh_dir("sched_recover_cache");

  // "Crash" before the worker ever ran: journal an acknowledged submit by
  // hand, exactly as a daemon SIGKILLed right after the ack would leave it.
  JobRequest request = figure2_request(21);
  {
    JobJournal journal(journal_path);
    const CacheKey key =
        compute_cache_key(request.configs, request.options, request.policy,
                          request.strategy);
    ASSERT_TRUE(journal.append_submit(1, request, key));
  }

  // Restart: the scheduler must re-enqueue and complete the job under its
  // original id, converging to the same content-addressed artifact.
  JobJournal journal(journal_path);
  ASSERT_EQ(journal.recovery().pending.size(), 1u);
  ArtifactCache cache(cache_dir);
  JobScheduler::Options options;
  options.journal = &journal;
  JobScheduler scheduler(&cache, options);
  EXPECT_EQ(scheduler.stats().recovered, 1u);
  ASSERT_TRUE(scheduler.wait(1));
  const auto status = scheduler.status(1);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kDone);
  const auto replayed = scheduler.result(1);
  ASSERT_TRUE(replayed.has_value());

  // A client resubmitting the same request (it never saw the result) gets
  // a cache hit with byte-identical artifacts — the convergence half of
  // the durability story.
  const SubmitOutcome resubmit = scheduler.submit_ex(std::move(request));
  ASSERT_TRUE(resubmit.accepted());
  ASSERT_TRUE(scheduler.wait(*resubmit.id));
  const auto second = scheduler.status(*resubmit.id);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->state, JobState::kDone);
  EXPECT_TRUE(second->cache_hit);
  const auto again = scheduler.result(*resubmit.id);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->artifacts.anonymized_configs,
            replayed->artifacts.anonymized_configs);
  EXPECT_EQ(again->artifacts.metrics_json, replayed->artifacts.metrics_json);
}

TEST(JobScheduler, JournalTombstonesKeepAnsweringAfterRestart) {
  const fs::path journal_path =
      fresh_dir("sched_tombstone_journal") / "jobs.wal";
  const fs::path cache_dir = fresh_dir("sched_tombstone_cache");
  std::string first_configs;
  std::uint64_t id = 0;
  {
    JobJournal journal(journal_path);
    ArtifactCache cache(cache_dir);
    JobScheduler::Options options;
    options.journal = &journal;
    JobScheduler scheduler(&cache, options);
    const SubmitOutcome outcome = scheduler.submit_ex(figure2_request(31));
    ASSERT_TRUE(outcome.accepted());
    id = *outcome.id;
    ASSERT_TRUE(scheduler.wait(id));
    const auto result = scheduler.result(id);
    ASSERT_TRUE(result.has_value());
    first_configs = result->artifacts.anonymized_configs;
    scheduler.shutdown(JobScheduler::ShutdownMode::kDrain);
  }

  // Restart: the completed job's id still answers (tombstone), and its
  // artifacts re-read from the cache byte-identically.
  JobJournal journal(journal_path);
  ArtifactCache cache(cache_dir);
  JobScheduler::Options options;
  options.journal = &journal;
  JobScheduler scheduler(&cache, options);
  const auto status = scheduler.status(id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kDone);
  const auto result = scheduler.result(id);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->artifacts.anonymized_configs, first_configs);
  // New ids never collide with journaled history.
  const SubmitOutcome fresh = scheduler.submit_ex(figure2_request(32));
  ASSERT_TRUE(fresh.accepted());
  EXPECT_GT(*fresh.id, id);
}

}  // namespace
}  // namespace confmask
