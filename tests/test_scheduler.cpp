// JobScheduler: concurrent distinct jobs complete with their own
// diagnostics, resubmission is a byte-identical cache hit that runs zero
// simulations, admission control rejects loudly, failed jobs are never
// cached, and shutdown mid-queue leaves no partial cache entries. The
// concurrent tests are part of the TSan workload in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "src/netgen/networks.hpp"
#include "src/service/job_scheduler.hpp"

namespace confmask {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / ("confmask_" + name);
  fs::remove_all(dir);
  return dir;
}

JobRequest figure2_request(std::uint64_t seed) {
  JobRequest request;
  request.configs = make_figure2();
  request.options.k_r = 2;
  request.options.k_h = 2;
  request.options.seed = seed;
  return request;
}

TEST(JobScheduler, ConcurrentDistinctJobsAllCompleteWithOwnDiagnostics) {
  ArtifactCache cache(fresh_dir("sched_concurrent"));
  JobScheduler::Options options;
  options.max_concurrent_jobs = 3;
  std::ostringstream trace_stream;
  obs::NdjsonSink sink(trace_stream);
  options.trace_sink = &sink;
  JobScheduler scheduler(&cache, options);

  std::vector<std::uint64_t> ids;
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const auto id = scheduler.submit(figure2_request(seed));
    ASSERT_TRUE(id.has_value());
    ids.push_back(*id);
  }
  std::vector<std::string> keys;
  for (const std::uint64_t id : ids) {
    ASSERT_TRUE(scheduler.wait(id));
    const auto status = scheduler.status(id);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->state, JobState::kDone) << "job " << id;
    EXPECT_FALSE(status->cache_hit) << "job " << id;
    keys.push_back(status->cache_key);
    const auto result = scheduler.result(id);
    ASSERT_TRUE(result.has_value());
    EXPECT_FALSE(result->artifacts.anonymized_configs.empty());
    // The job's own diagnostics artifact reports its success.
    EXPECT_NE(result->artifacts.diagnostics_json.find("\"ok\": true"),
              std::string::npos)
        << "job " << id;
    EXPECT_NE(result->artifacts.metrics_json.find("confmask.metrics/1"),
              std::string::npos);
  }
  // Distinct seeds → distinct cache keys → three stored entries.
  EXPECT_NE(keys[0], keys[1]);
  EXPECT_NE(keys[1], keys[2]);
  EXPECT_EQ(cache.entry_count(), 3u);

  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GT(stats.simulations, 0u);

  // Every trace line on the shared stream is attributed to some job.
  std::string line;
  std::istringstream lines(trace_stream.str());
  std::size_t traced = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.rfind("{\"job\": \"job-", 0), 0u) << line;
    ++traced;
  }
  EXPECT_GT(traced, 0u);
}

TEST(JobScheduler, ResubmitOfCompletedJobIsByteIdenticalCacheHit) {
  ArtifactCache cache(fresh_dir("sched_resubmit"));
  JobScheduler scheduler(&cache, {});

  const auto first = scheduler.submit(figure2_request(7));
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(scheduler.wait(*first));
  const auto first_status = scheduler.status(*first);
  ASSERT_TRUE(first_status.has_value());
  ASSERT_EQ(first_status->state, JobState::kDone);
  EXPECT_FALSE(first_status->cache_hit);
  const auto first_result = scheduler.result(*first);
  ASSERT_TRUE(first_result.has_value());
  const std::uint64_t sims_after_first = scheduler.stats().simulations;
  EXPECT_GT(sims_after_first, 0u);

  const auto second = scheduler.submit(figure2_request(7));
  ASSERT_TRUE(second.has_value());
  ASSERT_TRUE(scheduler.wait(*second));
  const auto second_status = scheduler.status(*second);
  ASSERT_TRUE(second_status.has_value());
  EXPECT_EQ(second_status->state, JobState::kDone);
  EXPECT_TRUE(second_status->cache_hit);
  EXPECT_EQ(second_status->cache_key, first_status->cache_key);

  // Byte-identical artifacts, zero additional simulations.
  const auto second_result = scheduler.result(*second);
  ASSERT_TRUE(second_result.has_value());
  EXPECT_TRUE(second_result->cache_hit);
  EXPECT_EQ(second_result->artifacts.anonymized_configs,
            first_result->artifacts.anonymized_configs);
  EXPECT_EQ(second_result->artifacts.diagnostics_json,
            first_result->artifacts.diagnostics_json);
  EXPECT_EQ(second_result->artifacts.metrics_json,
            first_result->artifacts.metrics_json);
  EXPECT_EQ(scheduler.stats().simulations, sims_after_first);
  EXPECT_EQ(scheduler.stats().cache.hits, 1u);
}

TEST(JobScheduler, DeviceOrderDoesNotDefeatTheCache) {
  ArtifactCache cache(fresh_dir("sched_order"));
  JobScheduler scheduler(&cache, {});
  const auto first = scheduler.submit(figure2_request(5));
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(scheduler.wait(*first));

  JobRequest reordered = figure2_request(5);
  std::reverse(reordered.configs.routers.begin(),
               reordered.configs.routers.end());
  const auto second = scheduler.submit(std::move(reordered));
  ASSERT_TRUE(second.has_value());
  ASSERT_TRUE(scheduler.wait(*second));
  const auto status = scheduler.status(*second);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kDone);
  EXPECT_TRUE(status->cache_hit);
}

TEST(JobScheduler, FailedJobsReportTaxonomyAndAreNeverCached) {
  ArtifactCache cache(fresh_dir("sched_failed"));
  JobScheduler scheduler(&cache, {});
  JobRequest doomed = figure2_request(1);
  // One equivalence iteration is never enough for Figure 2, and an empty
  // escalation ladder leaves the guarded driver no rung to climb: the run
  // fails closed with a deterministic NonConvergent verdict.
  doomed.options.max_equivalence_iterations = 1;
  doomed.policy.equivalence_iteration_ladder = {};
  doomed.policy.max_attempts = 1;
  const auto id = scheduler.submit(std::move(doomed));
  ASSERT_TRUE(id.has_value());
  ASSERT_TRUE(scheduler.wait(*id));
  const auto status = scheduler.status(*id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kFailed);
  EXPECT_FALSE(status->error_category.empty());
  EXPECT_GE(status->exit_code, 10);  // taxonomy band, not a generic 1
  // Failure diagnostics are available; configs are not (fail closed).
  const auto result = scheduler.result(*id);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->artifacts.anonymized_configs.empty());
  EXPECT_NE(result->artifacts.diagnostics_json.find("\"ok\": false"),
            std::string::npos);
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(scheduler.stats().failed, 1u);
}

TEST(JobScheduler, AdmissionControlRejectsBeyondMaxPending) {
  ArtifactCache cache(fresh_dir("sched_admission"));
  JobScheduler::Options options;
  options.max_pending = 0;  // every submission exceeds the pending budget
  JobScheduler scheduler(&cache, options);
  EXPECT_FALSE(scheduler.submit(figure2_request(1)).has_value());
  EXPECT_EQ(scheduler.stats().rejected, 1u);
  EXPECT_EQ(scheduler.stats().submitted, 0u);
}

TEST(JobScheduler, ShutdownMidQueueCancelsPendingAndLeavesNoPartialEntries) {
  const fs::path root = fresh_dir("sched_shutdown");
  ArtifactCache cache(root);
  JobScheduler::Options options;
  options.max_concurrent_jobs = 1;  // force a deep queue
  JobScheduler scheduler(&cache, options);
  std::vector<std::uint64_t> ids;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto id = scheduler.submit(figure2_request(seed));
    ASSERT_TRUE(id.has_value());
    ids.push_back(*id);
  }
  scheduler.shutdown(JobScheduler::ShutdownMode::kCancelPending);

  // Every job is terminal: the running ones completed (fail-closed jobs
  // are never abandoned mid-flight), the queued ones cancelled cleanly.
  std::size_t done = 0;
  std::size_t cancelled = 0;
  for (const std::uint64_t id : ids) {
    const auto status = scheduler.status(id);
    ASSERT_TRUE(status.has_value());
    if (status->state == JobState::kDone) {
      ++done;
    } else {
      EXPECT_EQ(status->state, JobState::kCancelled);
      ++cancelled;
    }
  }
  EXPECT_EQ(done + cancelled, ids.size());
  EXPECT_GT(cancelled, 0u);  // with 1 worker and 5 jobs, some were queued

  // The cache holds only COMPLETE entries — exactly one per done job, no
  // staging litter published, nothing half-written.
  EXPECT_EQ(cache.entry_count(), done);
  for (const auto& entry : fs::directory_iterator(root / "entries")) {
    EXPECT_TRUE(fs::exists(entry.path() / "meta.json"));
    EXPECT_TRUE(fs::exists(entry.path() / "anonymized.cfgset"));
    EXPECT_TRUE(fs::exists(entry.path() / "diagnostics.json"));
    EXPECT_TRUE(fs::exists(entry.path() / "metrics.json"));
  }

  // Post-shutdown submissions are rejected, not silently dropped.
  EXPECT_FALSE(scheduler.submit(figure2_request(9)).has_value());
}

TEST(JobScheduler, DrainShutdownFinishesQueuedJobs) {
  ArtifactCache cache(fresh_dir("sched_drain"));
  JobScheduler::Options options;
  options.max_concurrent_jobs = 1;
  JobScheduler scheduler(&cache, options);
  std::vector<std::uint64_t> ids;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto id = scheduler.submit(figure2_request(seed));
    ASSERT_TRUE(id.has_value());
    ids.push_back(*id);
  }
  scheduler.shutdown(JobScheduler::ShutdownMode::kDrain);
  for (const std::uint64_t id : ids) {
    const auto status = scheduler.status(id);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->state, JobState::kDone) << "job " << id;
  }
  EXPECT_EQ(cache.entry_count(), 3u);
}

TEST(JobScheduler, CancelDequeuesAQueuedJob) {
  ArtifactCache cache(fresh_dir("sched_cancel"));
  JobScheduler::Options options;
  options.max_concurrent_jobs = 1;
  JobScheduler scheduler(&cache, options);
  const auto first = scheduler.submit(figure2_request(1));
  const auto second = scheduler.submit(figure2_request(2));
  const auto third = scheduler.submit(figure2_request(3));
  ASSERT_TRUE(first && second && third);
  // With one worker, at least the LAST submission is still queued right
  // now — but any of them may have started; accept either outcome and
  // verify the invariant: cancel succeeds iff the job was queued.
  const bool cancelled = scheduler.cancel(*third);
  ASSERT_TRUE(scheduler.wait(*first));
  ASSERT_TRUE(scheduler.wait(*second));
  ASSERT_TRUE(scheduler.wait(*third));
  const auto status = scheduler.status(*third);
  ASSERT_TRUE(status.has_value());
  if (cancelled) {
    EXPECT_EQ(status->state, JobState::kCancelled);
    EXPECT_FALSE(scheduler.result(*third).has_value());
  } else {
    EXPECT_EQ(status->state, JobState::kDone);
  }
  EXPECT_FALSE(scheduler.cancel(*first));  // terminal jobs can't cancel
  EXPECT_FALSE(scheduler.cancel(9999));    // unknown id
}

}  // namespace
}  // namespace confmask
