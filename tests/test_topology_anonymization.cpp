// Step 1 in isolation: fake links must make the (two-level) router graph
// k-degree anonymous while looking exactly like real links in the
// configurations.
#include "src/core/topology_anonymization.hpp"

#include <gtest/gtest.h>

#include "src/core/metrics.hpp"
#include "src/netgen/builder.hpp"
#include "src/netgen/networks.hpp"
#include "src/routing/simulation.hpp"

namespace confmask {
namespace {

struct Stage1 {
  ConfigSet configs;
  TopologyAnonymizationOutcome outcome;
};

Stage1 run_stage1(const ConfigSet& original, int k_r,
                  FakeLinkCostPolicy policy = FakeLinkCostPolicy::kMinCost,
                  std::uint64_t seed = 11) {
  Stage1 stage;
  stage.configs = original;
  const OriginalIndex index = [&] {
    const Simulation sim(original);
    return OriginalIndex(sim);
  }();
  PrefixAllocator allocator;
  for (const auto& prefix : original.used_prefixes()) {
    allocator.reserve(prefix);
  }
  Rng rng(seed);
  stage.outcome =
      anonymize_topology(stage.configs, k_r, policy, rng, allocator);
  return stage;
}

TEST(TopologyAnonymization, BicsBecomesKDegreeAnonymous) {
  const auto original = make_bics();
  for (int k_r : {2, 6, 10}) {
    const auto stage = run_stage1(original, k_r);
    EXPECT_GE(topology_min_degree_class(stage.configs), k_r) << "k=" << k_r;
  }
}

TEST(TopologyAnonymization, OriginalLinksAreKept) {
  const auto original = make_fattree04();
  const auto stage = run_stage1(original, 6);
  const auto before = Topology::build(original);
  const auto after = Topology::build(stage.configs);
  const auto graph_after = after.router_graph();
  for (const auto& link : before.links()) {
    if (!before.is_router(link.a.node) || !before.is_router(link.b.node)) {
      continue;
    }
    const int a = after.find_node(before.node(link.a.node).name);
    const int b = after.find_node(before.node(link.b.node).name);
    EXPECT_TRUE(graph_after.has_edge(a, b));
  }
}

TEST(TopologyAnonymization, FakeLinksLookLikeRealOnes) {
  const auto original = make_bics();
  const auto stage = run_stage1(original, 6);
  ASSERT_FALSE(stage.outcome.intra_as_links.empty());
  const auto& [name_a, name_b] = stage.outcome.intra_as_links.front();
  const auto* ra = stage.configs.find_router(name_a);
  const auto* rb = stage.configs.find_router(name_b);
  ASSERT_NE(ra, nullptr);
  ASSERT_NE(rb, nullptr);

  // Locate the fake interface pair: outside the original 10/8 space with
  // a description naming the fake peer.
  const Ipv4Prefix original_space{Ipv4Address{10, 0, 0, 0}, 8};
  const InterfaceConfig* ia = nullptr;
  for (const auto& iface : ra->interfaces) {
    if (iface.address && !original_space.contains(*iface.address) &&
        iface.description == "to-" + name_b) {
      ia = &iface;
    }
  }
  ASSERT_NE(ia, nullptr);
  EXPECT_EQ(ia->prefix_length, 31);
  // Covered by OSPF network statements, like every real link.
  EXPECT_TRUE(ra->ospf->covers(*ia->address));
  // Interface boilerplate is mimicked from real interfaces.
  EXPECT_EQ(ia->extra_lines, ra->interfaces.front().extra_lines);
  const auto* ib = rb->interface_towards(*ia->address);
  ASSERT_NE(ib, nullptr);
  EXPECT_TRUE(rb->ospf->covers(*ib->address));
}

TEST(TopologyAnonymization, MinCostPolicySetsOriginalDistance) {
  const auto original = make_bics();
  const OriginalIndex index = [&] {
    const Simulation sim(original);
    return OriginalIndex(sim);
  }();
  const auto stage = run_stage1(original, 6, FakeLinkCostPolicy::kMinCost);
  for (const auto& [name_a, name_b] : stage.outcome.intra_as_links) {
    const auto* ra = stage.configs.find_router(name_a);
    // Find the fake interface for THIS pair: outside the original 10/8
    // space, described as pointing at name_b.
    const Ipv4Prefix original_space{Ipv4Address{10, 0, 0, 0}, 8};
    bool found = false;
    for (const auto& iface : ra->interfaces) {
      if (!iface.address || original_space.contains(*iface.address)) continue;
      if (iface.description != "to-" + name_b) continue;
      ASSERT_TRUE(iface.ospf_cost.has_value());
      EXPECT_EQ(*iface.ospf_cost,
                static_cast<int>(index.igp_distance(name_a, name_b)));
      found = true;
    }
    EXPECT_TRUE(found) << name_a << "-" << name_b;
  }
}

TEST(TopologyAnonymization, LargeAndDefaultCostPolicies) {
  const auto original = make_figure2();
  const auto large = run_stage1(original, 4, FakeLinkCostPolicy::kLarge);
  const Ipv4Prefix original_space{Ipv4Address{10, 0, 0, 0}, 8};
  bool saw_fake = false;
  for (const auto& router : large.configs.routers) {
    for (const auto& iface : router.interfaces) {
      if (!iface.address || original_space.contains(*iface.address)) continue;
      saw_fake = true;
      EXPECT_EQ(iface.ospf_cost, 60000);
    }
  }
  EXPECT_TRUE(saw_fake);

  const auto dflt = run_stage1(original, 4, FakeLinkCostPolicy::kDefault);
  for (const auto& router : dflt.configs.routers) {
    for (const auto& iface : router.interfaces) {
      if (!iface.address || original_space.contains(*iface.address)) continue;
      EXPECT_FALSE(iface.ospf_cost.has_value());
    }
  }
}

TEST(TopologyAnonymization, BgpNetworksGetTwoLevelAnonymity) {
  const auto original = make_enterprise();
  const auto stage = run_stage1(original, 6);
  // AS sizes are 4/3/3, so the achievable k is 3.
  EXPECT_GE(topology_min_degree_class_two_level(stage.configs), 3);
}

TEST(TopologyAnonymization, FakeInterAsLinksCarryEbgpSessions) {
  // A 4-AS line (AS graph path) forces AS-level edge additions.
  ConfigSet original = [&] {
    NetworkBuilder builder;
    for (int as = 1; as <= 4; ++as) {
      for (int i = 1; i <= 2; ++i) {
        const auto name = "r" + std::to_string(as) + std::to_string(i);
        builder.router(name);
        builder.enable_ospf(name);
        builder.enable_bgp(name, as);
      }
      builder.link("r" + std::to_string(as) + "1",
                   "r" + std::to_string(as) + "2");
      builder.host("h" + std::to_string(as), "r" + std::to_string(as) + "1");
    }
    builder.ebgp_link("r12", "r21");
    builder.ebgp_link("r22", "r31");
    builder.ebgp_link("r32", "r41");
    return builder.take();
  }();

  const auto stage = run_stage1(original, 3);
  EXPECT_FALSE(stage.outcome.inter_as_links.empty());
  for (const auto& [name_a, name_b] : stage.outcome.inter_as_links) {
    const auto* ra = stage.configs.find_router(name_a);
    const auto* rb = stage.configs.find_router(name_b);
    // Reciprocal neighbor statements over the fake link.
    const auto& ia = ra->interfaces.back();
    const auto& ib = rb->interfaces.back();
    EXPECT_NE(ra->bgp->find_neighbor(*ib.address), nullptr);
    EXPECT_NE(rb->bgp->find_neighbor(*ia.address), nullptr);
    // No IGP coverage on eBGP interfaces.
    EXPECT_FALSE(ra->ospf->covers(*ia.address));
  }
}

TEST(TopologyAnonymization, AlreadyAnonymousNetworkGetsNoFakeLinks) {
  // FatTree04 degree classes: 8 edge routers (degree 2... with hosts
  // excluded: edge=2, agg=4, core=4) — min class is 8, so k_r=6 needs
  // nothing.
  const auto original = make_fattree04();
  const auto stage = run_stage1(original, 6);
  EXPECT_EQ(stage.outcome.total_links(), 0u);
}

}  // namespace
}  // namespace confmask
