#include "src/nethide/nethide.hpp"

#include <gtest/gtest.h>

#include "src/core/confmask.hpp"
#include "src/core/metrics.hpp"
#include "src/netgen/networks.hpp"
#include "src/routing/simulation.hpp"

namespace confmask {
namespace {

TEST(NetHide, ObfuscatedTopologyIsDegreeAnonymous) {
  const auto configs = make_bics();
  NetHideOptions options;
  options.k_r = 6;
  const auto result = run_nethide(configs, options);
  EXPECT_GT(result.fake_links, 0u);
  EXPECT_GE(topology_min_degree_class(result.obfuscated), 6);
}

TEST(NetHide, KeepsAllNodesAndReachability) {
  const auto configs = make_bics();
  const auto result = run_nethide(configs, {});
  EXPECT_EQ(result.obfuscated.routers.size(), configs.routers.size());
  EXPECT_EQ(result.obfuscated.hosts.size(), configs.hosts.size());

  // Reachability survives (paths change, delivery does not).
  const Simulation sim(result.obfuscated);
  const auto& topo = sim.topology();
  for (int src : topo.host_ids()) {
    for (int dst : topo.host_ids()) {
      if (src == dst) continue;
      EXPECT_FALSE(sim.paths(src, dst).empty());
    }
  }
}

TEST(NetHide, DoesNotPreservePathsExactly) {
  // The Fig 8 signature: NetHide keeps only a fraction of host-to-host
  // paths exactly, ConfMask keeps all of them.
  const auto configs = make_bics();
  const auto original_dp = [&] {
    const Simulation sim(configs);
    return sim.extract_data_plane();
  }();

  const auto nethide = run_nethide(configs, {});
  const double nethide_kept =
      DataPlane::exactly_kept_fraction(original_dp, nethide.data_plane);
  EXPECT_LT(nethide_kept, 1.0);

  ConfMaskOptions options;
  const auto confmask = run_confmask(configs, options);
  const double confmask_kept = DataPlane::exactly_kept_fraction(
      original_dp, confmask.anonymized_dp);
  EXPECT_DOUBLE_EQ(confmask_kept, 1.0);
  EXPECT_LT(nethide_kept, confmask_kept);
}

TEST(NetHide, DeterministicUnderSeed) {
  const auto configs = make_fattree04();
  NetHideOptions options;
  options.k_r = 10;
  options.seed = 5;
  const auto a = run_nethide(configs, options);
  const auto b = run_nethide(configs, options);
  EXPECT_EQ(a.fake_links, b.fake_links);
  EXPECT_EQ(a.data_plane, b.data_plane);
}

TEST(NetHide, FakeLinksHaveDefaultCost) {
  const auto configs = make_fattree04();
  NetHideOptions options;
  options.k_r = 10;
  const auto result = run_nethide(configs, options);
  const Ipv4Prefix original_space{Ipv4Address{10, 0, 0, 0}, 8};
  bool saw_fake = false;
  for (const auto& router : result.obfuscated.routers) {
    for (const auto& iface : router.interfaces) {
      if (!iface.address || original_space.contains(*iface.address)) continue;
      saw_fake = true;
      EXPECT_FALSE(iface.ospf_cost.has_value());
    }
  }
  EXPECT_TRUE(saw_fake);
}

}  // namespace
}  // namespace confmask
