// RIP (distance-vector) semantics: hop-count metric, classful coverage,
// and filters that act at advertisement-import time — unlike OSPF, a RIP
// filter makes the router fall back to its next-best neighbor.
#include <gtest/gtest.h>

#include "src/netgen/builder.hpp"
#include "src/routing/simulation.hpp"

namespace confmask {
namespace {

/// Square r1-r2-r3-r4 with hosts on r1 and r3; RIP everywhere.
ConfigSet rip_square() {
  NetworkBuilder builder;
  for (const char* name : {"r1", "r2", "r3", "r4"}) {
    builder.router(name);
    builder.enable_rip(name);
  }
  builder.link("r1", "r2");
  builder.link("r2", "r3");
  builder.link("r3", "r4");
  builder.link("r4", "r1");
  builder.host("h1", "r1");
  builder.host("h3", "r3");
  return builder.take();
}

TEST(SimulationRip, HopCountEcmp) {
  const auto configs = rip_square();
  const Simulation sim(configs);
  const auto& topo = sim.topology();
  // Two 2-hop paths around the square.
  const auto paths = sim.paths(topo.find_node("h1"), topo.find_node("h3"));
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0][2], "r2");
  EXPECT_EQ(paths[1][2], "r4");
}

TEST(SimulationRip, ImportFilterReroutesInsteadOfBlackholing) {
  // Deny h3's LAN on r1's interface towards r2: r1 only keeps the route
  // via r4. This is the distance-vector contrast to the OSPF
  // install-time-filter black-hole test.
  auto configs = rip_square();
  auto* r1 = configs.find_router("r1");
  const auto dest = configs.find_host("h3")->prefix();
  auto& list = r1->ensure_prefix_list("CMF_R");
  list.add_deny(dest);
  list.add_permit_all();
  // r1's first interface (Ethernet0) is the link to r2.
  r1->rip->distribute_lists.push_back(DistributeList{"CMF_R", "Ethernet0"});

  const Simulation sim(configs);
  const auto& topo = sim.topology();
  const auto paths = sim.paths(topo.find_node("h1"), topo.find_node("h3"));
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0][2], "r4");
}

TEST(SimulationRip, FilterPropagatesDownstream) {
  // Chain r1-r2-r3 with host on r3. Filtering h3 at r2 (import from r3)
  // removes the destination for r1 as well — r2 no longer advertises it.
  NetworkBuilder builder;
  for (const char* name : {"r1", "r2", "r3"}) {
    builder.router(name);
    builder.enable_rip(name);
  }
  builder.link("r1", "r2");
  builder.link("r2", "r3");
  builder.host("h1", "r1");
  builder.host("h3", "r3");
  auto configs = builder.take();

  auto* r2 = configs.find_router("r2");
  const auto dest = configs.find_host("h3")->prefix();
  auto& list = r2->ensure_prefix_list("CMF_R");
  list.add_deny(dest);
  list.add_permit_all();
  // r2's second interface (Ethernet1) is the link to r3.
  r2->rip->distribute_lists.push_back(DistributeList{"CMF_R", "Ethernet1"});

  const Simulation sim(configs);
  const auto& topo = sim.topology();
  EXPECT_TRUE(sim.paths(topo.find_node("h1"), topo.find_node("h3")).empty());
  // Reverse direction unfiltered.
  EXPECT_FALSE(sim.paths(topo.find_node("h3"), topo.find_node("h1")).empty());
}

TEST(SimulationRip, LongChainConverges) {
  NetworkBuilder builder;
  std::vector<std::string> names;
  for (int i = 0; i < 12; ++i) {
    names.push_back("r" + std::to_string(i));
    builder.router(names.back());
    builder.enable_rip(names.back());
  }
  for (int i = 0; i + 1 < 12; ++i) builder.link(names[i], names[i + 1]);
  builder.host("ha", "r0");
  builder.host("hb", "r11");
  const auto configs = builder.take();
  const Simulation sim(configs);
  const auto& topo = sim.topology();
  const auto paths = sim.paths(topo.find_node("ha"), topo.find_node("hb"));
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].size(), 14u);
}

}  // namespace
}  // namespace confmask
