// The guarded pipeline runner without fault injection: clean-run behavior,
// genuine route-equivalence non-convergence (iteration budget of 1 on a
// network that needs more), the iteration-escalation rung, the fail-closed
// gate, the error taxonomy, and DataPlane::diff divergence reporting.
#include "src/core/pipeline_runner.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/config/emit.hpp"
#include "src/config/parse.hpp"
#include "src/core/confmask.hpp"
#include "src/core/errors.hpp"
#include "src/core/route_equivalence.hpp"
#include "src/graph/k_degree_anonymize.hpp"
#include "src/netgen/networks.hpp"
#include "src/routing/dataplane.hpp"
#include "src/routing/simulation.hpp"
#include "src/util/prefix_allocator.hpp"

namespace confmask {
namespace {

ConfMaskOptions figure2_options() {
  ConfMaskOptions options;
  // k_r = 4 forces all four routers of Fig 2 into one degree class, so
  // fake links (and therefore equivalence-restoring filters) are
  // guaranteed to be needed.
  options.k_r = 4;
  options.k_h = 2;
  options.seed = 7;
  return options;
}

bool has_fallback(const PipelineDiagnostics& diag, FallbackKind kind) {
  for (const auto& event : diag.fallbacks) {
    if (event.kind == kind) return true;
  }
  return false;
}

TEST(PipelineRunner, CleanRunSucceedsFirstAttempt) {
  const auto guarded =
      run_pipeline_guarded(make_figure2(), figure2_options());
  ASSERT_TRUE(guarded.ok());
  EXPECT_TRUE(guarded.diagnostics.ok);
  EXPECT_EQ(guarded.diagnostics.attempts, 1);
  EXPECT_TRUE(guarded.diagnostics.fallbacks.empty());
  EXPECT_TRUE(guarded.result->functionally_equivalent);
  EXPECT_TRUE(guarded.result->equivalence_converged);
  EXPECT_FALSE(guarded.result->anonymized.routers.empty());
}

// The satellite contract: max_equivalence_iterations = 1 on a network that
// needs more iterations is genuinely non-convergent...
TEST(PipelineRunner, SingleIterationBudgetIsGenuinelyNonConvergent) {
  const auto original = make_figure2();
  const Simulation sim(original);
  OriginalIndex index(sim);
  ConfigSet configs = original;
  PrefixAllocator allocator;
  for (const auto& prefix : original.used_prefixes()) {
    allocator.reserve(prefix);
  }
  Rng rng(3);
  const auto topo = anonymize_topology(configs, 4,
                                       FakeLinkCostPolicy::kMinCost, rng,
                                       allocator);
  ASSERT_GT(topo.total_links(), 0u);

  const auto outcome = enforce_route_equivalence(configs, index,
                                                 /*max_iterations=*/1);
  EXPECT_FALSE(outcome.converged);
  EXPECT_GT(outcome.filters_added, 0);
}

// ... the guarded driver recovers by escalating the iteration budget ...
TEST(PipelineRunner, EscalatesIterationBudgetOnNonConvergence) {
  auto options = figure2_options();
  options.max_equivalence_iterations = 1;
  RetryPolicy policy;
  policy.equivalence_iteration_ladder = {64};

  const auto guarded =
      run_pipeline_guarded(make_figure2(), options, policy);
  ASSERT_TRUE(guarded.ok());
  EXPECT_EQ(guarded.diagnostics.attempts, 2);
  EXPECT_TRUE(has_fallback(guarded.diagnostics,
                           FallbackKind::kEscalateIterations));
  EXPECT_EQ(guarded.effective_options.max_equivalence_iterations, 64);
  EXPECT_TRUE(guarded.result->equivalence_converged);
  EXPECT_TRUE(guarded.result->functionally_equivalent);
}

// ... and with no escalation left it fails CLOSED: no configs, diagnostics
// populated.
TEST(PipelineRunner, FailsClosedWhenEscalationLadderExhausted) {
  auto options = figure2_options();
  options.max_equivalence_iterations = 1;
  RetryPolicy policy;
  policy.equivalence_iteration_ladder = {};  // no rungs left

  const auto guarded =
      run_pipeline_guarded(make_figure2(), options, policy);
  EXPECT_FALSE(guarded.ok());
  EXPECT_FALSE(guarded.result.has_value());
  EXPECT_EQ(guarded.diagnostics.stage, PipelineStage::kRouteEquivalence);
  EXPECT_EQ(guarded.diagnostics.category, ErrorCategory::kNonConvergent);
  EXPECT_FALSE(guarded.diagnostics.message.empty());
  EXPECT_EQ(guarded.diagnostics.attempts, 1);
}

TEST(ErrorTaxonomy, ExitCodesAreDistinctAndStable) {
  EXPECT_EQ(exit_code_for(ErrorCategory::kInfeasibleParams), 10);
  EXPECT_EQ(exit_code_for(ErrorCategory::kResourceExhausted), 11);
  EXPECT_EQ(exit_code_for(ErrorCategory::kNonConvergent), 12);
  EXPECT_EQ(exit_code_for(ErrorCategory::kParseError), 13);
  EXPECT_EQ(exit_code_for(ErrorCategory::kInternal), 14);
}

TEST(ErrorTaxonomy, RetryabilityDefaults) {
  EXPECT_TRUE(default_retryable(ErrorCategory::kInfeasibleParams));
  EXPECT_TRUE(default_retryable(ErrorCategory::kResourceExhausted));
  EXPECT_TRUE(default_retryable(ErrorCategory::kNonConvergent));
  EXPECT_FALSE(default_retryable(ErrorCategory::kParseError));
  EXPECT_FALSE(default_retryable(ErrorCategory::kInternal));
}

TEST(ErrorTaxonomy, PipelineErrorCarriesStageCategoryContext) {
  ErrorContext context;
  context.router = "r1";
  context.host = "h2";
  context.iterations = 3;
  const PipelineError error(PipelineStage::kRouteEquivalence,
                            ErrorCategory::kInternal, "boom", context);
  EXPECT_EQ(error.stage(), PipelineStage::kRouteEquivalence);
  EXPECT_EQ(error.category(), ErrorCategory::kInternal);
  EXPECT_FALSE(error.retryable());
  EXPECT_EQ(error.context().router, "r1");
  const std::string what = error.what();
  EXPECT_NE(what.find("RouteEquivalence"), std::string::npos);
  EXPECT_NE(what.find("Internal"), std::string::npos);
  EXPECT_NE(what.find("router=r1"), std::string::npos);
  EXPECT_NE(what.find("host=h2"), std::string::npos);
  EXPECT_NE(what.find("iterations=3"), std::string::npos);
}

TEST(ErrorTaxonomy, TranslatesLowerLayerErrors) {
  const PrefixPoolExhausted pool(*Ipv4Prefix::parse("172.20.0.0/14"), 31, 5);
  const auto from_pool =
      translate_exception(PipelineStage::kTopologyAnon, pool);
  EXPECT_EQ(from_pool.category(), ErrorCategory::kResourceExhausted);
  EXPECT_EQ(from_pool.stage(), PipelineStage::kTopologyAnon);
  EXPECT_TRUE(from_pool.retryable());

  const KDegreeError infeasible(KDegreeError::Kind::kInfeasible, 10, 6, 0,
                                "infeasible");
  const auto from_infeasible =
      translate_exception(PipelineStage::kTopologyAnon, infeasible);
  EXPECT_EQ(from_infeasible.category(), ErrorCategory::kInfeasibleParams);
  EXPECT_TRUE(from_infeasible.retryable());
  EXPECT_EQ(from_infeasible.context().k, 6);

  const KDegreeError stuck(KDegreeError::Kind::kNonConvergent, 10, 6, 500,
                           "did not converge");
  EXPECT_EQ(translate_exception(PipelineStage::kTopologyAnon, stuck)
                .category(),
            ErrorCategory::kNonConvergent);

  const ConfigParseError parse("r1.cfg", 12, "bad mask");
  const auto from_parse =
      translate_exception(PipelineStage::kPreprocess, parse);
  EXPECT_EQ(from_parse.category(), ErrorCategory::kParseError);
  EXPECT_FALSE(from_parse.retryable());

  const std::runtime_error other("mystery");
  EXPECT_EQ(translate_exception(PipelineStage::kVerification, other)
                .category(),
            ErrorCategory::kInternal);
}

TEST(DataPlaneDiff, EqualPlanesHaveEmptyDiff) {
  DataPlane plane;
  plane.flows[{"h1", "h2"}] = {{"h1", "r1", "r2", "h2"}};
  EXPECT_TRUE(plane.diff(plane).empty());
}

TEST(DataPlaneDiff, ReportsDivergingNextHopTriple) {
  DataPlane lhs;
  lhs.flows[{"h1", "h2"}] = {{"h1", "r1", "r2", "h2"}};
  DataPlane rhs;
  rhs.flows[{"h1", "h2"}] = {{"h1", "r1", "r3", "h2"}};

  const auto entries = lhs.diff(rhs);
  ASSERT_FALSE(entries.empty());
  // r1 forwards to r2 in lhs but r3 in rhs.
  bool found = false;
  for (const auto& entry : entries) {
    if (entry.router == "r1") {
      found = true;
      EXPECT_EQ(entry.source, "h1");
      EXPECT_EQ(entry.destination, "h2");
      EXPECT_EQ(entry.lhs_next_hops, std::vector<std::string>{"r2"});
      EXPECT_EQ(entry.rhs_next_hops, std::vector<std::string>{"r3"});
    }
  }
  EXPECT_TRUE(found);
}

TEST(DataPlaneDiff, ReportsMissingFlow) {
  DataPlane lhs;
  lhs.flows[{"h1", "h2"}] = {{"h1", "r1", "h2"}};
  const DataPlane rhs;

  const auto entries = lhs.diff(rhs);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].source, "h1");
  EXPECT_EQ(entries[0].destination, "h2");
  EXPECT_TRUE(entries[0].router.empty());
  EXPECT_EQ(entries[0].lhs_next_hops, std::vector<std::string>{"r1"});
  EXPECT_TRUE(entries[0].rhs_next_hops.empty());
}

TEST(DataPlaneDiff, RespectsLimit) {
  DataPlane lhs;
  DataPlane rhs;
  for (int i = 0; i < 10; ++i) {
    const std::string src = "h" + std::to_string(i);
    lhs.flows[{src, "hd"}] = {{src, "r1", "hd"}};
  }
  const auto entries = lhs.diff(rhs, /*limit=*/3);
  EXPECT_EQ(entries.size(), 3u);
}

TEST(DataPlaneDiff, HostsCollectsEndpoints) {
  DataPlane plane;
  plane.flows[{"h1", "h2"}] = {{"h1", "r1", "h2"}};
  plane.flows[{"h2", "h3"}] = {{"h2", "r1", "h3"}};
  EXPECT_EQ(plane.hosts(), (std::set<std::string>{"h1", "h2", "h3"}));
}

TEST(PipelineRunner, PreFiredCancelTokenFailsClosedAsDeadlineExceeded) {
  // A deadline that expired before the run began: the runner must refuse
  // to start the attempt, land in the DeadlineExceeded taxonomy, and ship
  // no configs — within one poll point, no pipeline work performed.
  CancelToken token;
  token.set_deadline_after(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_EQ(token.fired(), CancelToken::Reason::kDeadline);
  const auto guarded = run_pipeline_guarded(make_figure2(), figure2_options(),
                                            {}, EquivalenceStrategy::kConfMask,
                                            &token);
  EXPECT_FALSE(guarded.ok());
  EXPECT_FALSE(guarded.result.has_value());  // fail closed: no configs
  EXPECT_EQ(guarded.diagnostics.category, ErrorCategory::kDeadlineExceeded);
  EXPECT_EQ(exit_code_for(guarded.diagnostics.category), 15);
  EXPECT_NE(guarded.diagnostics.context.detail.find("deadline"),
            std::string::npos)
      << guarded.diagnostics.context.detail;
}

TEST(PipelineRunner, ExplicitCancellationIsDistinguishableFromDeadline) {
  CancelToken token;
  token.request_cancel();
  const auto guarded = run_pipeline_guarded(make_figure2(), figure2_options(),
                                            {}, EquivalenceStrategy::kConfMask,
                                            &token);
  EXPECT_FALSE(guarded.ok());
  EXPECT_EQ(guarded.diagnostics.category, ErrorCategory::kDeadlineExceeded);
  // The reason travels in the error context so the scheduler can tell a
  // user cancel (kCancelled) from a blown deadline (kFailed).
  EXPECT_NE(guarded.diagnostics.context.detail.find("cancelled"),
            std::string::npos)
      << guarded.diagnostics.context.detail;
}

TEST(PipelineRunner, UnfiredTokenDoesNotPerturbACleanRun) {
  CancelToken token;
  token.set_deadline_after(60'000);
  const auto guarded = run_pipeline_guarded(make_figure2(), figure2_options(),
                                            {}, EquivalenceStrategy::kConfMask,
                                            &token);
  ASSERT_TRUE(guarded.ok());
  EXPECT_TRUE(guarded.result->functionally_equivalent);
  // Byte-identical to an uncancelled run: the token is observed, never
  // woven into the output.
  const auto baseline =
      run_pipeline_guarded(make_figure2(), figure2_options());
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(canonical_config_set_text(guarded.result->anonymized),
            canonical_config_set_text(baseline.result->anonymized));
}

}  // namespace
}  // namespace confmask
