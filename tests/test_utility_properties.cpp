// Appendix B of the paper proves functional equivalence implies the six
// routing utility properties; here we CHECK them, per network, instead of
// trusting the proof — and show which ones NetHide violates.
#include "src/core/utility_properties.hpp"

#include <gtest/gtest.h>

#include "src/core/confmask.hpp"
#include "src/netgen/networks.hpp"
#include "src/nethide/nethide.hpp"
#include "src/routing/simulation.hpp"

namespace confmask {
namespace {

class UtilityProperties : public ::testing::TestWithParam<std::size_t> {};

TEST_P(UtilityProperties, ConfMaskPreservesEverything) {
  const auto networks = evaluation_networks();
  const auto& network = networks[GetParam()];
  ConfMaskOptions options;
  options.seed = 0xFACE + GetParam();
  const auto result = run_confmask(network.configs, options);

  const auto report =
      check_utility_properties(result.original_dp, result.anonymized_dp);
  EXPECT_TRUE(report.reachability) << network.name;
  EXPECT_TRUE(report.path_lengths) << network.name;
  EXPECT_TRUE(report.waypointing) << network.name;
  EXPECT_TRUE(report.multipath_consistency) << network.name;
  EXPECT_TRUE(report.exact_paths) << network.name;
  EXPECT_TRUE(report.all()) << network.name;
}

INSTANTIATE_TEST_SUITE_P(AllNetworks, UtilityProperties,
                         ::testing::Range<std::size_t>(0, 8));

TEST(UtilityPropertiesNetHide, NetHideBreaksPathProperties) {
  const auto configs = make_fattree04();
  const auto original_dp = [&] {
    const Simulation sim(configs);
    return sim.extract_data_plane();
  }();
  NetHideOptions options;
  options.k_r = 10;
  const auto nethide = run_nethide(configs, options);
  const auto report = check_utility_properties(original_dp,
                                               nethide.data_plane);
  // NetHide keeps hosts reachable...
  EXPECT_TRUE(report.reachability);
  // ...but the path-level properties that make debugging possible die.
  EXPECT_FALSE(report.exact_paths);
  EXPECT_FALSE(report.path_lengths && report.waypointing &&
               report.multipath_consistency);
}

TEST(UtilityPropertiesUnit, DetectsEachViolationKind) {
  DataPlane original;
  original.flows[{"a", "b"}] = {{"a", "r1", "r2", "b"},
                                {"a", "r1", "r3", "b"}};

  {
    DataPlane missing;  // flow gone -> reachability violated
    EXPECT_FALSE(preserves_reachability(original, missing));
  }
  {
    DataPlane longer = original;
    longer.flows[{"a", "b"}] = {{"a", "r1", "r4", "r2", "b"},
                                {"a", "r1", "r3", "b"}};
    EXPECT_TRUE(preserves_reachability(original, longer));
    EXPECT_FALSE(preserves_path_lengths(original, longer));
  }
  {
    DataPlane rerouted = original;
    rerouted.flows[{"a", "b"}] = {{"a", "r9", "r2", "b"},
                                  {"a", "r9", "r3", "b"}};
    // Same lengths and count, but the common router changed.
    EXPECT_TRUE(preserves_path_lengths(original, rerouted));
    EXPECT_TRUE(preserves_multipath_consistency(original, rerouted));
    EXPECT_FALSE(preserves_waypointing(original, rerouted));
  }
  {
    DataPlane collapsed = original;
    collapsed.flows[{"a", "b"}] = {{"a", "r1", "r2", "b"}};
    // ECMP collapsed to a single path.
    EXPECT_FALSE(preserves_multipath_consistency(original, collapsed));
  }
  {
    DataPlane extra = original;
    extra.flows[{"a", "b_1"}] = {{"a", "r1", "b_1"}};
    // Extra (fake-host) flows never violate anything.
    EXPECT_TRUE(check_utility_properties(original, extra).all());
  }
}

TEST(UtilityPropertiesRip, DistanceVectorNetworkEndToEnd) {
  // The full pipeline on a RIP network: exercises the paper's
  // distance-vector SFE conditions (filters propagate, unlike OSPF).
  const auto configs = make_isp_rip("rip", 24, 16, 34, 0x11F);
  ConfMaskOptions options;
  options.k_r = 4;
  options.k_h = 2;
  options.seed = 3;
  const auto result = run_confmask(configs, options);
  EXPECT_TRUE(result.equivalence_converged);
  EXPECT_TRUE(result.functionally_equivalent);
  EXPECT_TRUE(
      check_utility_properties(result.original_dp, result.anonymized_dp)
          .all());
}

TEST(UtilityPropertiesRip, StrawmenAlsoConvergeOnRip) {
  const auto configs = make_isp_rip("rip", 16, 10, 22, 0x22F);
  ConfMaskOptions options;
  options.k_r = 4;
  options.seed = 5;
  for (const auto strategy :
       {EquivalenceStrategy::kStrawman1, EquivalenceStrategy::kStrawman2}) {
    const auto result = run_pipeline(configs, options, strategy);
    EXPECT_TRUE(result.functionally_equivalent)
        << static_cast<int>(strategy);
  }
}

}  // namespace
}  // namespace confmask
