// Content-addressed artifact cache: key canonicalization and coverage,
// store/hit byte-identity, stale-binary and collision invalidation, and
// the atomic-publish guarantee (no partial entries, ever).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>

#include "src/config/emit.hpp"
#include "src/netgen/networks.hpp"
#include "src/service/artifact_cache.hpp"
#include "src/service/cache_key.hpp"
#include "src/util/hash.hpp"

#if defined(CONFMASK_FAULT_INJECTION)
#include "fault_injection.hpp"
#include "src/util/io_shim.hpp"
#endif

namespace confmask {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / ("confmask_" + name);
  fs::remove_all(dir);
  return dir;
}

CacheArtifacts sample_artifacts() {
  CacheArtifacts artifacts;
  artifacts.anonymized_configs = "!>> device r0\nhostname r0\n";
  artifacts.diagnostics_json = "{\n  \"ok\": true\n}\n";
  artifacts.metrics_json = "{\"schema\": \"confmask.metrics/1\"}\n";
  return artifacts;
}

TEST(CacheKey, DeterministicAndSensitiveToEveryParameter) {
  const ConfigSet network = make_figure2();
  const ConfMaskOptions base;
  const RetryPolicy policy;
  const auto key = compute_cache_key(network, base, policy,
                                     EquivalenceStrategy::kConfMask);
  EXPECT_EQ(key, compute_cache_key(network, base, policy,
                                   EquivalenceStrategy::kConfMask));
  EXPECT_EQ(key.hex().size(), 16u);
  EXPECT_EQ(key.hex(), hex64(key.primary));

  // Every parameter that can change output bytes must change the key.
  ConfMaskOptions changed = base;
  changed.seed = base.seed + 1;
  EXPECT_NE(key, compute_cache_key(network, changed, policy,
                                   EquivalenceStrategy::kConfMask));
  changed = base;
  changed.k_r = base.k_r + 1;
  EXPECT_NE(key, compute_cache_key(network, changed, policy,
                                   EquivalenceStrategy::kConfMask));
  changed = base;
  changed.noise_p = base.noise_p + 0.05;
  EXPECT_NE(key, compute_cache_key(network, changed, policy,
                                   EquivalenceStrategy::kConfMask));
  RetryPolicy relaxed = policy;
  relaxed.max_reseeds = policy.max_reseeds + 1;
  EXPECT_NE(key, compute_cache_key(network, base, relaxed,
                                   EquivalenceStrategy::kConfMask));
  EXPECT_NE(key, compute_cache_key(network, base, policy,
                                   EquivalenceStrategy::kStrawman1));
}

TEST(CacheKey, DeviceOrderCanonicalizedAndIncrementalFlagExcluded) {
  ConfigSet forward = make_figure2();
  ConfigSet reversed = forward;
  std::reverse(reversed.routers.begin(), reversed.routers.end());
  std::reverse(reversed.hosts.begin(), reversed.hosts.end());
  const ConfMaskOptions options;
  const RetryPolicy policy;
  EXPECT_EQ(compute_cache_key(forward, options, policy,
                              EquivalenceStrategy::kConfMask),
            compute_cache_key(reversed, options, policy,
                              EquivalenceStrategy::kConfMask));

  // incremental_simulation is verified bit-identical either way, so it
  // must NOT split the cache.
  ConfMaskOptions incremental_off = options;
  incremental_off.incremental_simulation = false;
  EXPECT_EQ(compute_cache_key(forward, options, policy,
                              EquivalenceStrategy::kConfMask),
            compute_cache_key(forward, incremental_off, policy,
                              EquivalenceStrategy::kConfMask));
}

TEST(CacheKey, NetworkContentChangesKey) {
  ConfigSet network = make_figure2();
  const ConfMaskOptions options;
  const RetryPolicy policy;
  const auto key = compute_cache_key(network, options, policy,
                                     EquivalenceStrategy::kConfMask);
  network.routers[0].extra_lines.push_back("description changed");
  EXPECT_NE(key, compute_cache_key(network, options, policy,
                                   EquivalenceStrategy::kConfMask));
}

TEST(ArtifactCache, StoreThenLookupReturnsByteIdenticalArtifacts) {
  ArtifactCache cache(fresh_dir("store_hit"), "stamp-a");
  CacheKey key{0x1234, 0x5678};
  EXPECT_FALSE(cache.lookup(key).has_value());
  const CacheArtifacts artifacts = sample_artifacts();
  cache.store(key, artifacts);
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->anonymized_configs, artifacts.anonymized_configs);
  EXPECT_EQ(hit->diagnostics_json, artifacts.diagnostics_json);
  EXPECT_EQ(hit->metrics_json, artifacts.metrics_json);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.stores, 1u);
  EXPECT_EQ(stats.invalidations, 0u);
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(ArtifactCache, EntriesSurviveReopenWithSameStamp) {
  const fs::path root = fresh_dir("reopen");
  const CacheKey key{42, 43};
  {
    ArtifactCache cache(root, "stamp-a");
    cache.store(key, sample_artifacts());
  }
  ArtifactCache cache(root, "stamp-a");
  EXPECT_TRUE(cache.lookup(key).has_value());
}

TEST(ArtifactCache, StaleBinaryStampInvalidatesInPlace) {
  const fs::path root = fresh_dir("stamp");
  const CacheKey key{7, 8};
  {
    ArtifactCache old_binary(root, "stamp-old");
    old_binary.store(key, sample_artifacts());
  }
  ArtifactCache new_binary(root, "stamp-new");
  EXPECT_FALSE(new_binary.lookup(key).has_value());
  EXPECT_EQ(new_binary.stats().invalidations, 1u);
  EXPECT_EQ(new_binary.entry_count(), 0u);  // purged, not left to rot
  // The slot is reusable by the new binary.
  new_binary.store(key, sample_artifacts());
  EXPECT_TRUE(new_binary.lookup(key).has_value());
}

TEST(ArtifactCache, SecondaryDigestMismatchPurges) {
  const fs::path root = fresh_dir("collision");
  ArtifactCache cache(root, "stamp-a");
  const CacheKey stored{100, 200};
  cache.store(stored, sample_artifacts());
  // Same primary digest, different secondary: a primary-hash collision.
  const CacheKey colliding{100, 999};
  EXPECT_FALSE(cache.lookup(colliding).has_value());
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(ArtifactCache, CorruptMetadataPurges) {
  const fs::path root = fresh_dir("corrupt");
  const CacheKey key{1, 2};
  ArtifactCache cache(root, "stamp-a");
  cache.store(key, sample_artifacts());
  std::ofstream(root / "entries" / key.hex() / "meta.json")
      << "not json at all\n";
  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(ArtifactCache, StagingLitterIsSweptAndNeverVisible) {
  const fs::path root = fresh_dir("staging");
  {
    ArtifactCache cache(root, "stamp-a");
    // Simulate a crash mid-write: a staging dir with real content that
    // never published.
    fs::create_directories(root / "staging" / "deadbeef.0");
    std::ofstream(root / "staging" / "deadbeef.0" / "meta.json") << "{}";
  }
  ArtifactCache reopened(root, "stamp-a");
  EXPECT_FALSE(fs::exists(root / "staging" / "deadbeef.0"));
  EXPECT_EQ(reopened.entry_count(), 0u);  // litter never became an entry
}

TEST(ArtifactCache, PublishedEntriesAreAlwaysComplete) {
  const fs::path root = fresh_dir("complete");
  ArtifactCache cache(root, "stamp-a");
  for (std::uint64_t i = 0; i < 5; ++i) {
    cache.store(CacheKey{i, i + 1}, sample_artifacts());
  }
  // Every directory under entries/ holds all four files — the atomic
  // rename-publish invariant.
  for (const auto& entry : fs::directory_iterator(root / "entries")) {
    EXPECT_TRUE(fs::exists(entry.path() / "meta.json")) << entry.path();
    EXPECT_TRUE(fs::exists(entry.path() / "anonymized.cfgset"))
        << entry.path();
    EXPECT_TRUE(fs::exists(entry.path() / "diagnostics.json"))
        << entry.path();
    EXPECT_TRUE(fs::exists(entry.path() / "metrics.json")) << entry.path();
  }
  EXPECT_EQ(cache.entry_count(), 5u);
}

TEST(ArtifactCache, DuplicateStoreKeepsFirstEntry) {
  ArtifactCache cache(fresh_dir("dup"), "stamp-a");
  const CacheKey key{9, 10};
  cache.store(key, sample_artifacts());
  CacheArtifacts other = sample_artifacts();
  other.metrics_json = "{\"different\": true}\n";
  cache.store(key, other);  // lost race with an identical job: no-op
  EXPECT_EQ(cache.stats().stores, 1u);
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->metrics_json, sample_artifacts().metrics_json);
}

TEST(ArtifactCache, LruEvictionKeepsBytesUnderBudget) {
  // Measure one entry's on-disk footprint, then budget for two and a half.
  std::uint64_t entry_bytes = 0;
  {
    ArtifactCache probe(fresh_dir("lru_probe"), "stamp-a");
    probe.store(CacheKey{1, 1}, sample_artifacts());
    entry_bytes = probe.total_bytes();
  }
  ASSERT_GT(entry_bytes, 0u);

  ArtifactCache cache(fresh_dir("lru"), "stamp-a",
                      entry_bytes * 2 + entry_bytes / 2);
  cache.store(CacheKey{1, 1}, sample_artifacts());
  cache.store(CacheKey{2, 2}, sample_artifacts());
  // Touch entry 1: entry 2 becomes the least recently used.
  ASSERT_TRUE(cache.lookup(CacheKey{1, 1}).has_value());
  cache.store(CacheKey{3, 3}, sample_artifacts());

  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_GT(cache.stats().evicted_bytes, 0u);
  EXPECT_LE(cache.total_bytes(), cache.max_bytes());
  EXPECT_EQ(cache.entry_count(), 2u);
  EXPECT_FALSE(cache.lookup(CacheKey{2, 2}).has_value());  // the LRU victim
  EXPECT_TRUE(cache.lookup(CacheKey{1, 1}).has_value());
  EXPECT_TRUE(cache.lookup(CacheKey{3, 3}).has_value());

  // Eviction is invisible except in cost: the evicted key re-publishes
  // cleanly when its job is recomputed.
  EXPECT_EQ(cache.store(CacheKey{2, 2}, sample_artifacts()),
            StoreResult::kPublished);
  EXPECT_TRUE(cache.lookup(CacheKey{2, 2}).has_value());
  EXPECT_LE(cache.total_bytes(), cache.max_bytes());
}

TEST(ArtifactCache, BudgetSmallerThanOneEntryDegradesToCacheOfOne) {
  // The just-published entry is never its own eviction victim, so an
  // absurdly small budget degrades to "cache of one" instead of livelock.
  ArtifactCache cache(fresh_dir("tiny_budget"), "stamp-a", 1);
  EXPECT_EQ(cache.store(CacheKey{1, 1}, sample_artifacts()),
            StoreResult::kPublished);
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.store(CacheKey{2, 2}, sample_artifacts()),
            StoreResult::kPublished);
  EXPECT_EQ(cache.entry_count(), 1u);  // first entry evicted, second kept
  EXPECT_FALSE(cache.lookup(CacheKey{1, 1}).has_value());
  EXPECT_TRUE(cache.lookup(CacheKey{2, 2}).has_value());
}

TEST(ArtifactCache, ScrubAtOpenPurgesStructurallyBrokenEntries) {
  const fs::path root = fresh_dir("scrub");
  const CacheKey broken{1, 2};
  const CacheKey intact{3, 4};
  {
    ArtifactCache cache(root, "stamp-a");
    cache.store(broken, sample_artifacts());
    cache.store(intact, sample_artifacts());
  }
  // Bit rot / operator mishap: one artifact file vanishes from a
  // published entry. The open-time integrity scrub must purge the whole
  // entry rather than let a lookup half-succeed later.
  fs::remove(root / "entries" / broken.hex() / "metrics.json");
  ArtifactCache reopened(root, "stamp-a");
  EXPECT_EQ(reopened.stats().invalidations, 1u);
  EXPECT_EQ(reopened.entry_count(), 1u);
  EXPECT_FALSE(reopened.lookup(broken).has_value());
  EXPECT_TRUE(reopened.lookup(intact).has_value());
}

#if defined(CONFMASK_FAULT_INJECTION)

TEST(ArtifactCache, InjectedDiskFaultsFailTheStoreNotTheCache) {
  ArtifactCache cache(fresh_dir("store_faults"), "stamp-a");
  const CacheKey key{50, 51};
  std::string error;
  {
    const ScopedFault fault(io::kFaultEnospc, 1);
    EXPECT_EQ(cache.store(key, sample_artifacts(), &error),
              StoreResult::kIoError);
  }
  EXPECT_FALSE(error.empty());
  {
    // A torn write: some bytes land, the rest hit ENOSPC.
    const ScopedFault fault(io::kFaultShortWrite, 1);
    EXPECT_EQ(cache.store(key, sample_artifacts(), &error),
              StoreResult::kIoError);
  }
  {
    const ScopedFault fault(io::kFaultFsyncFail, 1);
    EXPECT_EQ(cache.store(key, sample_artifacts(), &error),
              StoreResult::kIoError);
  }
  EXPECT_EQ(cache.stats().io_errors, 3u);
  // No fragment was ever published — not even a directory.
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_FALSE(cache.lookup(key).has_value());

  // Once the disk recovers, the same key publishes cleanly — the failure
  // poisoned the one store, not the cache.
  EXPECT_EQ(cache.store(key, sample_artifacts(), &error),
            StoreResult::kPublished)
      << error;
  EXPECT_TRUE(cache.lookup(key).has_value());
}

#endif  // CONFMASK_FAULT_INJECTION

TEST(CacheKey, RenameChangesKeyAndDigestReorderChangesNeither) {
  const ConfigSet base = make_figure2();
  const ConfMaskOptions options;
  const RetryPolicy policy;
  const auto base_key = compute_cache_key(base, options, policy,
                                          EquivalenceStrategy::kConfMask);
  const auto base_digests = compute_device_digests(base);

  // Rename without a content edit: the section text carries its own
  // `hostname` line, so both the name AND the digest move with it — and
  // the bundle key with them (names are hashed in canonical order).
  ConfigSet renamed = base;
  renamed.routers.back().hostname = "zz-renamed";
  EXPECT_NE(base_key, compute_cache_key(renamed, options, policy,
                                        EquivalenceStrategy::kConfMask));
  const auto renamed_digests = compute_device_digests(renamed);
  ASSERT_EQ(renamed_digests.size(), base_digests.size());

  // Device reorder is pure canonicalization: same key, same device table.
  ConfigSet reordered = base;
  std::reverse(reordered.routers.begin(), reordered.routers.end());
  EXPECT_EQ(base_key, compute_cache_key(reordered, options, policy,
                                        EquivalenceStrategy::kConfMask));
  EXPECT_EQ(compute_device_digests(reordered), base_digests);
}

TEST(ArtifactCache, LookupOriginalReturnsBundleAndDeviceTable) {
  ArtifactCache cache(fresh_dir("lookup_original"), "stamp-a");
  const CacheKey key{77, 78};
  CacheArtifacts artifacts = sample_artifacts();
  artifacts.original_configs = canonical_config_set_text(make_figure2());
  ASSERT_EQ(cache.store(key, artifacts), StoreResult::kPublished);

  const auto hit = cache.lookup_original(key.hex());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->original_configs, artifacts.original_configs);
  // The persisted device table round-trips the exact digests the v2 key
  // hashes — what a resubmit diffs against.
  EXPECT_EQ(hit->devices,
            compute_device_digests(artifacts.original_configs));

  EXPECT_FALSE(cache.lookup_original("ffffffffffffffff").has_value());
}

TEST(ArtifactCache, MissingWatchFilesArePurgedAsV1Entries) {
  // A version-1 entry is structurally an entry without original.cfgset /
  // devices.tsv. The opening scrub must purge it: it can serve neither a
  // v2 key nor a resubmit's base lookup.
  const fs::path root = fresh_dir("v1_purge");
  const CacheKey key{11, 12};
  {
    ArtifactCache cache(root, "stamp-a");
    cache.store(key, sample_artifacts());
  }
  fs::remove(root / "entries" / key.hex() / "original.cfgset");
  fs::remove(root / "entries" / key.hex() / "devices.tsv");
  ArtifactCache reopened(root, "stamp-a");
  EXPECT_EQ(reopened.stats().invalidations, 1u);
  EXPECT_EQ(reopened.entry_count(), 0u);
  EXPECT_FALSE(reopened.lookup(key).has_value());
}

TEST(ArtifactCache, LruSeedTiesBreakDeterministicallyByKey) {
  // Filesystems quantize mtimes; entries published within one granule used
  // to seed recency in directory-iteration order — whatever the kernel
  // returned that day. Pin all three entries to the SAME mtime and reopen:
  // the victim must be chosen by the key tie-break, reproducibly.
  std::uint64_t entry_bytes = 0;
  {
    ArtifactCache probe(fresh_dir("lru_tie_probe"), "stamp-a");
    probe.store(CacheKey{1, 1}, sample_artifacts());
    entry_bytes = probe.total_bytes();
  }
  ASSERT_GT(entry_bytes, 0u);

  const fs::path root = fresh_dir("lru_tie");
  {
    ArtifactCache cache(root, "stamp-a");
    cache.store(CacheKey{3, 3}, sample_artifacts());
    cache.store(CacheKey{1, 1}, sample_artifacts());
    cache.store(CacheKey{2, 2}, sample_artifacts());
  }
  const auto now = fs::file_time_type::clock::now();
  for (const auto& entry : fs::directory_iterator(root / "entries")) {
    fs::last_write_time(entry.path(), now);
  }

  // Budget for three and a half entries: publishing a fourth forces one
  // eviction, and with every seeded mtime equal the smallest key is the
  // deterministic victim.
  ArtifactCache reopened(root, "stamp-a",
                         entry_bytes * 3 + entry_bytes / 2);
  ASSERT_EQ(reopened.entry_count(), 3u);
  ASSERT_EQ(reopened.store(CacheKey{4, 4}, sample_artifacts()),
            StoreResult::kPublished);
  EXPECT_EQ(reopened.stats().evictions, 1u);
  EXPECT_FALSE(reopened.lookup(CacheKey{1, 1}).has_value());
  EXPECT_TRUE(reopened.lookup(CacheKey{2, 2}).has_value());
  EXPECT_TRUE(reopened.lookup(CacheKey{3, 3}).has_value());
  EXPECT_TRUE(reopened.lookup(CacheKey{4, 4}).has_value());
}

TEST(Hash, Fnv1a64KnownVectorsAndHexRoundTrip) {
  // FNV-1a/64 reference vectors.
  EXPECT_EQ(fnv1a64(""), 0xCBF29CE484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xAF63DC4C8601EC8CULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171F73967E8ULL);
  EXPECT_EQ(hex64(0), "0000000000000000");
  EXPECT_EQ(hex64(0xDEADBEEF12345678ULL), "deadbeef12345678");
  EXPECT_EQ(parse_hex64("deadbeef12345678"), 0xDEADBEEF12345678ULL);
  EXPECT_FALSE(parse_hex64("xyz").has_value());
  EXPECT_FALSE(parse_hex64("1234").has_value());  // must be 16 digits
}

}  // namespace
}  // namespace confmask
