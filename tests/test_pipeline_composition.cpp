// Composition properties of the whole toolchain: the anonymizer's output
// is itself a valid input (round-trip through text, re-anonymization),
// and the PII add-on composes in either order.
#include <gtest/gtest.h>

#include "src/config/emit.hpp"
#include "src/config/parse.hpp"
#include "src/core/confmask.hpp"
#include "src/core/metrics.hpp"
#include "src/netgen/networks.hpp"
#include "src/pii/pii_addon.hpp"
#include "src/routing/simulation.hpp"

namespace confmask {
namespace {

/// Emits and re-parses a whole configuration set (what a recipient does).
ConfigSet through_text(const ConfigSet& configs) {
  ConfigSet result;
  for (const auto& router : configs.routers) {
    result.routers.push_back(parse_router(emit_router(router)));
  }
  for (const auto& host : configs.hosts) {
    result.hosts.push_back(parse_host(emit_host(host)));
  }
  return result;
}

TEST(Composition, AnonymizedOutputSurvivesTextRoundTrip) {
  ConfMaskOptions options;
  options.seed = 5;
  const auto result = run_confmask(make_university(), options);

  const auto reparsed = through_text(result.anonymized);
  const Simulation direct(result.anonymized);
  const Simulation via_text(reparsed);
  EXPECT_EQ(direct.extract_data_plane(), via_text.extract_data_plane());
}

TEST(Composition, AnonymizingTheAnonymizedStillWorks) {
  // A recipient may themselves re-share: ConfMask applied to ConfMask
  // output must preserve the (already anonymized) data plane exactly.
  ConfMaskOptions options;
  options.k_r = 4;
  options.seed = 6;
  const auto first = run_confmask(make_figure2(), options);
  ASSERT_TRUE(first.functionally_equivalent);

  options.seed = 7;
  const auto second = run_confmask(first.anonymized, options);
  EXPECT_TRUE(second.equivalence_converged);
  EXPECT_TRUE(second.functionally_equivalent);
  // Everything from round one (including round-one fakes) is preserved.
  EXPECT_GE(second.anonymized.hosts.size(), first.anonymized.hosts.size());
}

TEST(Composition, PiiThenConfMask) {
  // The reverse order also works: scrub PII first, anonymize topology and
  // routes second. (The paper recommends ConfMask first, PII as add-on;
  // both must be functional.)
  const auto original = make_backbone();
  PiiOptions pii_options;
  const auto pii = apply_pii_addon(original, pii_options);

  ConfMaskOptions options;
  options.seed = 8;
  const auto result = run_confmask(pii.configs, options);
  EXPECT_TRUE(result.functionally_equivalent);
}

TEST(Composition, StatsAreInternallyConsistent) {
  ConfMaskOptions options;
  options.seed = 9;
  options.k_h = 3;
  const auto result = run_confmask(make_enterprise(), options);
  // Line accounting: emitted totals match the recorded stats.
  EXPECT_EQ(config_set_line_stats(result.anonymized).total(),
            result.stats.anonymized_lines.total());
  // Host bookkeeping: every reported fake host exists in the output.
  for (const auto& name : result.fake_hosts) {
    EXPECT_NE(result.anonymized.find_host(name), nullptr) << name;
  }
  // The original + fakes account for all hosts.
  EXPECT_EQ(result.anonymized.hosts.size(),
            make_enterprise().hosts.size() + result.fake_hosts.size());
}

TEST(Composition, VerificationCatchesTampering) {
  // Sanity for the verification itself: breaking the anonymized network
  // must flip the data-plane comparison. (Guards against a vacuous
  // functionally_equivalent flag.)
  ConfMaskOptions options;
  options.seed = 10;
  auto result = run_confmask(make_figure2(), options);
  ASSERT_TRUE(result.functionally_equivalent);

  // Tamper: shut down a real interface and re-verify manually.
  auto tampered = result.anonymized;
  tampered.find_router("r3")->interfaces[0].shutdown = true;
  const Simulation sim(tampered);
  std::set<std::string> real_hosts;
  for (const auto& host : make_figure2().hosts) {
    real_hosts.insert(host.hostname);
  }
  EXPECT_NE(sim.extract_data_plane().restricted_to(real_hosts),
            result.original_dp);
}

}  // namespace
}  // namespace confmask
