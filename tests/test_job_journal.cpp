// Write-ahead job journal: record round-trips survive reopen, torn tails
// are truncated (WAL discipline: nothing after the first bad record is
// trusted), replay is idempotent, terminal jobs compact to capped
// tombstones, and injected I/O faults fail the append loudly instead of
// acknowledging an un-journaled job.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "src/netgen/networks.hpp"
#include "src/service/cache_key.hpp"
#include "src/service/job_journal.hpp"
#include "src/util/hash.hpp"

#if defined(CONFMASK_FAULT_INJECTION)
#include "fault_injection.hpp"
#include "src/util/io_shim.hpp"
#endif

namespace confmask {
namespace {

namespace fs = std::filesystem;

fs::path fresh_journal(const std::string& name) {
  const fs::path path =
      fs::path(testing::TempDir()) / ("confmask_journal_" + name) / "jobs.wal";
  fs::remove_all(path.parent_path());
  return path;
}

JobRequest sample_request(std::uint64_t seed) {
  JobRequest request;
  request.configs = make_figure2();
  request.options.k_r = 2;
  request.options.k_h = 2;
  request.options.seed = seed;
  request.options.noise_p = 0.125;
  request.deadline_ms = 30'000;
  request.policy.equivalence_iteration_ladder = {32, 64};
  return request;
}

CacheKey key_of(const JobRequest& request) {
  return compute_cache_key(request.configs, request.options, request.policy,
                           request.strategy);
}

JobStatus done_status(std::uint64_t id, const CacheKey& key) {
  JobStatus status;
  status.id = id;
  status.state = JobState::kDone;
  status.cache_key = key.hex();
  return status;
}

TEST(JobJournal, EncodedRecordsCarryValidCrcAndDetectCorruption) {
  const JobRequest request = sample_request(7);
  const CacheKey key = key_of(request);
  const std::string submit = JobJournal::encode_submit(3, request, key);
  EXPECT_TRUE(JobJournal::crc_ok(submit));
  const std::string state = JobJournal::encode_state(done_status(3, key),
                                                     key.secondary);
  EXPECT_TRUE(JobJournal::crc_ok(state));

  // Any flipped byte — in the payload or in the CRC itself — is caught.
  for (const std::size_t victim :
       {std::size_t{10}, submit.size() / 2, submit.size() - 3}) {
    std::string corrupt = submit;
    corrupt[victim] = corrupt[victim] == 'x' ? 'y' : 'x';
    EXPECT_FALSE(JobJournal::crc_ok(corrupt)) << "byte " << victim;
  }
  // A truncated record (the classic torn write) never passes.
  EXPECT_FALSE(JobJournal::crc_ok(submit.substr(0, submit.size() - 1)));
  EXPECT_FALSE(JobJournal::crc_ok(""));
}

TEST(JobJournal, AcknowledgedSubmitSurvivesReopenWithFullRequest) {
  const fs::path path = fresh_journal("roundtrip");
  const JobRequest request = sample_request(42);
  const CacheKey key = key_of(request);
  {
    JobJournal journal(path);
    EXPECT_TRUE(journal.recovery().pending.empty());
    ASSERT_TRUE(journal.append_submit(9, request, key));
  }
  JobJournal reopened(path);
  const JournalRecovery& recovery = reopened.recovery();
  ASSERT_EQ(recovery.pending.size(), 1u);
  EXPECT_TRUE(recovery.terminal.empty());
  EXPECT_EQ(recovery.truncated_bytes, 0u);
  EXPECT_EQ(recovery.next_id, 10u);

  // The decoded request re-keys to the recorded key — the property that
  // guarantees the replayed job is byte-for-byte the acknowledged one.
  const RecoveredJob& job = recovery.pending.front();
  EXPECT_EQ(job.id, 9u);
  EXPECT_EQ(job.key, key);
  EXPECT_EQ(job.request.options.seed, 42u);
  EXPECT_EQ(job.request.options.noise_p, 0.125);
  EXPECT_EQ(job.request.deadline_ms, 30'000u);
  EXPECT_EQ(job.request.policy.equivalence_iteration_ladder,
            (std::vector<int>{32, 64}));
}

TEST(JobJournal, TerminalJobsCompactToTombstones) {
  const fs::path path = fresh_journal("tombstone");
  const JobRequest request = sample_request(1);
  const CacheKey key = key_of(request);
  {
    JobJournal journal(path);
    ASSERT_TRUE(journal.append_submit(1, request, key));
    ASSERT_TRUE(journal.append_state(done_status(1, key), key.secondary));
  }
  JobJournal reopened(path);
  EXPECT_TRUE(reopened.recovery().pending.empty());
  ASSERT_EQ(reopened.recovery().terminal.size(), 1u);
  const JournalTombstone& tomb = reopened.recovery().terminal.front();
  EXPECT_EQ(tomb.status.id, 1u);
  EXPECT_EQ(tomb.status.state, JobState::kDone);
  EXPECT_EQ(tomb.status.cache_key, key.hex());
  EXPECT_EQ(tomb.secondary, key.secondary);
}

TEST(JobJournal, TornTailIsTruncatedAndEarlierRecordsSurvive) {
  const fs::path path = fresh_journal("torn");
  const JobRequest request = sample_request(5);
  const CacheKey key = key_of(request);
  {
    JobJournal journal(path);
    ASSERT_TRUE(journal.append_submit(1, request, key));
  }
  // Simulate the crash: a record half-written when power died (no newline,
  // CRC never completed).
  const std::string torn =
      JobJournal::encode_submit(2, request, key).substr(0, 40);
  {
    std::ofstream out(path, std::ios::app);
    out << torn;
  }
  JobJournal reopened(path);
  EXPECT_EQ(reopened.recovery().truncated_bytes, torn.size());
  ASSERT_EQ(reopened.recovery().pending.size(), 1u);
  EXPECT_EQ(reopened.recovery().pending.front().id, 1u);
}

TEST(JobJournal, NothingAfterACorruptRecordIsTrusted) {
  const fs::path path = fresh_journal("poison");
  const JobRequest request = sample_request(5);
  const CacheKey key = key_of(request);
  {
    JobJournal journal(path);
    ASSERT_TRUE(journal.append_submit(1, request, key));
  }
  // A corrupt COMPLETE line followed by a valid one: WAL discipline says
  // the valid-looking survivor may itself be a torn-write artifact, so
  // recovery must stop at the first bad record, not skip over it.
  std::string corrupt = JobJournal::encode_submit(2, request, key);
  corrupt[corrupt.size() / 2] ^= 1;
  const std::string valid = JobJournal::encode_submit(3, request, key);
  {
    std::ofstream out(path, std::ios::app);
    out << corrupt << "\n" << valid << "\n";
  }
  JobJournal reopened(path);
  ASSERT_EQ(reopened.recovery().pending.size(), 1u);
  EXPECT_EQ(reopened.recovery().pending.front().id, 1u);
  EXPECT_EQ(reopened.recovery().truncated_bytes,
            corrupt.size() + valid.size() + 2);
}

TEST(JobJournal, ReplayIsIdempotentAcrossRepeatedReopens) {
  const fs::path path = fresh_journal("idempotent");
  const JobRequest request = sample_request(13);
  const CacheKey key = key_of(request);
  {
    JobJournal journal(path);
    ASSERT_TRUE(journal.append_submit(1, request, key));
    ASSERT_TRUE(journal.append_submit(2, sample_request(14),
                                      key_of(sample_request(14))));
    ASSERT_TRUE(journal.append_state(done_status(1, key), key.secondary));
  }
  // Reopen twice: compaction must converge — the second recovery sees the
  // same world the first one did, byte-for-byte on disk too.
  std::string first_bytes;
  {
    JobJournal first(path);
    ASSERT_EQ(first.recovery().pending.size(), 1u);
    ASSERT_EQ(first.recovery().terminal.size(), 1u);
    std::ifstream in(path);
    first_bytes.assign(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }
  JobJournal second(path);
  EXPECT_EQ(second.recovery().pending.size(), 1u);
  EXPECT_EQ(second.recovery().pending.front().id, 2u);
  EXPECT_EQ(second.recovery().terminal.size(), 1u);
  EXPECT_EQ(second.recovery().truncated_bytes, 0u);
  std::ifstream in(path);
  const std::string second_bytes{std::istreambuf_iterator<char>(in),
                                 std::istreambuf_iterator<char>()};
  EXPECT_EQ(first_bytes, second_bytes);
}

TEST(JobJournal, TombstoneCapAgesOutTheOldestIds) {
  const fs::path path = fresh_journal("cap");
  const JobRequest request = sample_request(1);
  const CacheKey key = key_of(request);
  {
    JobJournal journal(path);
    for (std::uint64_t id = 1; id <= 5; ++id) {
      ASSERT_TRUE(journal.append_submit(id, request, key));
      ASSERT_TRUE(journal.append_state(done_status(id, key), key.secondary));
    }
  }
  JobJournal reopened(path, /*max_tombstones=*/2);
  ASSERT_EQ(reopened.recovery().terminal.size(), 2u);
  EXPECT_EQ(reopened.recovery().terminal[0].status.id, 4u);
  EXPECT_EQ(reopened.recovery().terminal[1].status.id, 5u);
  // Aged-out ids no longer answer — but fresh ids keep counting upward, so
  // no id is ever reused for a different job.
  EXPECT_EQ(reopened.recovery().next_id, 6u);
}

#if defined(CONFMASK_FAULT_INJECTION)

TEST(JobJournal, InjectedWriteFailureFailsTheAppendLoudly) {
  const fs::path path = fresh_journal("enospc");
  JobJournal journal(path);  // construct BEFORE arming: recovery also writes
  const JobRequest request = sample_request(3);
  const CacheKey key = key_of(request);
  std::string error;
  {
    const ScopedFault fault(io::kFaultEnospc, 1);
    EXPECT_FALSE(journal.append_submit(1, request, key, &error));
  }
  EXPECT_NE(error.find("journal write"), std::string::npos) << error;
  {
    const ScopedFault fault(io::kFaultFsyncFail, 1);
    EXPECT_FALSE(journal.append_submit(1, request, key, &error));
  }
  EXPECT_NE(error.find("journal fsync"), std::string::npos) << error;
  EXPECT_EQ(journal.stats().append_failures, 2u);

  // The journal is not poisoned: once the fault clears, appends land. The
  // ENOSPC attempt left no bytes; the fsync-failed attempt DID leave a
  // complete record, and replaying it is the harmless at-least-once side
  // of the WAL contract (the client was told "rejected", and a surplus
  // replay converges through the content-addressed cache).
  ASSERT_TRUE(journal.append_submit(2, request, key, &error)) << error;
  JobJournal reopened(path);
  ASSERT_EQ(reopened.recovery().pending.size(), 2u);
  EXPECT_EQ(reopened.recovery().pending.front().id, 1u);
  EXPECT_EQ(reopened.recovery().pending.back().id, 2u);
}

TEST(JobJournal, TornWriteMidAppendIsInvisibleAfterRecovery) {
  const fs::path path = fresh_journal("torn_fault");
  JobJournal journal(path);
  const JobRequest request = sample_request(3);
  const CacheKey key = key_of(request);
  ASSERT_TRUE(journal.append_submit(1, request, key));
  {
    // Half the record lands, the rest never will — exactly what a crash
    // mid-write leaves behind.
    const ScopedFault fault(io::kFaultShortWrite, 1);
    std::string error;
    EXPECT_FALSE(journal.append_submit(2, request, key, &error));
  }
  JobJournal reopened(path);
  EXPECT_GT(reopened.recovery().truncated_bytes, 0u);
  ASSERT_EQ(reopened.recovery().pending.size(), 1u);
  EXPECT_EQ(reopened.recovery().pending.front().id, 1u);
}

#endif  // CONFMASK_FAULT_INJECTION

}  // namespace
}  // namespace confmask
