// Static routes (`ip route`): parsing, emission, and admin-distance /
// longest-prefix-match semantics in the simulator.
#include <gtest/gtest.h>

#include "src/config/emit.hpp"
#include "src/config/parse.hpp"
#include "src/netgen/builder.hpp"
#include "src/routing/simulation.hpp"

namespace confmask {
namespace {

/// Square a-l-b / a-r-b diamond with equal costs (two ECMP paths).
ConfigSet diamond() {
  NetworkBuilder builder;
  for (const char* name : {"a", "l", "r", "b"}) {
    builder.router(name);
    builder.enable_ospf(name);
  }
  builder.link("a", "l");
  builder.link("a", "r");
  builder.link("l", "b");
  builder.link("r", "b");
  builder.host("hs", "a");
  builder.host("hd", "b");
  return builder.take();
}

/// The next-hop address `router` would use towards `peer`: the address of
/// PEER's interface on their shared link.
Ipv4Address address_towards(const ConfigSet& configs,
                            const std::string& router,
                            const std::string& peer) {
  const Topology topo = Topology::build(configs);
  const int r = topo.find_node(router);
  const int p = topo.find_node(peer);
  for (int link_id : topo.links_of(r)) {
    const Link& link = topo.link(link_id);
    if (link.other_end(r).node == p) return link.other_end(r).address;
  }
  throw std::logic_error("no link " + router + "-" + peer);
}

TEST(StaticRoutes, ParseEmitRoundTrip) {
  const char* text =
      "hostname r1\n"
      "ip route 10.128.5.0 255.255.255.0 10.0.0.3\n";
  const auto router = parse_router(text);
  ASSERT_EQ(router.static_routes.size(), 1u);
  EXPECT_EQ(router.static_routes[0].prefix.str(), "10.128.5.0/24");
  EXPECT_EQ(router.static_routes[0].next_hop.str(), "10.0.0.3");
  const auto reemitted = emit_router(router);
  EXPECT_NE(reemitted.find("ip route 10.128.5.0 255.255.255.0 10.0.0.3"),
            std::string::npos);
  EXPECT_EQ(emit_router(parse_router(reemitted)), reemitted);
}

TEST(StaticRoutes, ParseErrors) {
  EXPECT_THROW((void)parse_router("ip route 10.0.0.0 255.0.255.0 10.0.0.1\n"),
               ConfigParseError);
  EXPECT_THROW((void)parse_router("ip route 10.0.0.0 255.0.0.0 nexthop\n"),
               ConfigParseError);
}

TEST(StaticRoutes, OverridesEqualLengthIgpRoute) {
  auto configs = diamond();
  // Pin a's route for hd's /24 to the right branch; OSPF would use both.
  const auto dest = configs.find_host("hd")->prefix();
  configs.find_router("a")->static_routes.push_back(
      StaticRoute{dest, address_towards(configs, "a", "r")});

  const Simulation sim(configs);
  const auto& topo = sim.topology();
  const auto paths = sim.paths(topo.find_node("hs"), topo.find_node("hd"));
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0][2], "r");
  // Other destinations keep ECMP (reverse direction untouched).
  EXPECT_EQ(sim.paths(topo.find_node("hd"), topo.find_node("hs")).size(), 2u);
}

TEST(StaticRoutes, LongestPrefixMatchWins) {
  auto configs = diamond();
  // A /16 static covering the host LAN must NOT override the /24 IGP
  // route.
  const auto dest = configs.find_host("hd")->prefix();
  const Ipv4Prefix shorter{dest.network(), 16};
  configs.find_router("a")->static_routes.push_back(
      StaticRoute{shorter, address_towards(configs, "a", "r")});

  const Simulation sim(configs);
  const auto& topo = sim.topology();
  EXPECT_EQ(sim.paths(topo.find_node("hs"), topo.find_node("hd")).size(), 2u);
}

TEST(StaticRoutes, CoversDestinationsWithNoIgpRoute) {
  // Break IGP coverage of the destination LAN, then restore reachability
  // with statics hop by hop.
  NetworkBuilder builder;
  for (const char* name : {"a", "m", "b"}) {
    builder.router(name);
    builder.enable_ospf(name);
  }
  builder.link("a", "m");
  builder.link("m", "b");
  builder.host("hs", "a");
  builder.host("hd", "b");
  auto configs = builder.take();
  // Remove the OSPF advertisement of hd's LAN.
  auto* b = configs.find_router("b");
  const auto dest = configs.find_host("hd")->prefix();
  std::erase_if(b->ospf->networks, [&](const OspfNetwork& network) {
    return network.prefix == dest;
  });

  {
    const Simulation sim(configs);
    const auto& topo = sim.topology();
    EXPECT_TRUE(
        sim.paths(topo.find_node("hs"), topo.find_node("hd")).empty());
  }
  configs.find_router("a")->static_routes.push_back(
      StaticRoute{dest, address_towards(configs, "a", "m")});
  configs.find_router("m")->static_routes.push_back(
      StaticRoute{dest, address_towards(configs, "m", "b")});
  {
    const Simulation sim(configs);
    const auto& topo = sim.topology();
    const auto paths = sim.paths(topo.find_node("hs"), topo.find_node("hd"));
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_EQ(paths[0].size(), 5u);
  }
}

TEST(StaticRoutes, UnresolvableNextHopIsIgnored) {
  auto configs = diamond();
  const auto dest = configs.find_host("hd")->prefix();
  configs.find_router("a")->static_routes.push_back(
      StaticRoute{dest, *Ipv4Address::parse("192.0.2.99")});  // not a neighbor

  const Simulation sim(configs);
  const auto& topo = sim.topology();
  // IGP routing is untouched.
  EXPECT_EQ(sim.paths(topo.find_node("hs"), topo.find_node("hd")).size(), 2u);
}

TEST(StaticRoutes, MisconfiguredLoopIsDetectedAsNoPath) {
  // a and m point the destination at each other: forwarding loops, the
  // walk terminates, and the flow has no complete path (routing-loop
  // preservation is one of the paper's utility properties).
  NetworkBuilder builder;
  for (const char* name : {"a", "m", "b"}) {
    builder.router(name);
    builder.enable_ospf(name);
  }
  builder.link("a", "m");
  builder.link("m", "b");
  builder.host("hs", "a");
  builder.host("hd", "b");
  auto configs = builder.take();
  const auto dest = configs.find_host("hd")->prefix();
  // /32 statics so they beat the /24 OSPF route.
  const Ipv4Prefix host32{configs.find_host("hd")->address, 32};
  configs.find_router("a")->static_routes.push_back(
      StaticRoute{host32, address_towards(configs, "a", "m")});
  configs.find_router("m")->static_routes.push_back(
      StaticRoute{host32, address_towards(configs, "m", "a")});

  const Simulation sim(configs);
  const auto& topo = sim.topology();
  EXPECT_TRUE(sim.paths(topo.find_node("hs"), topo.find_node("hd")).empty());
  (void)dest;
}

}  // namespace
}  // namespace confmask
