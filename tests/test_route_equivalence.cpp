// Algorithm 1 in isolation, including the §3.2 strawman cost-policy
// trichotomy: only the min-cost policy lets filters restore the exact
// data plane under link-state install-time semantics.
#include "src/core/route_equivalence.hpp"

#include <gtest/gtest.h>

#include "src/core/confmask.hpp"
#include "src/core/topology_anonymization.hpp"
#include "src/netgen/networks.hpp"
#include "src/routing/simulation.hpp"

namespace confmask {
namespace {

struct Prepared {
  ConfigSet configs;
  OriginalIndex index;
  TopologyAnonymizationOutcome topo_outcome;
};

Prepared prepare(const ConfigSet& original, int k_r,
                 FakeLinkCostPolicy policy, std::uint64_t seed = 3) {
  const Simulation sim(original);
  Prepared prepared{original, OriginalIndex(sim), {}};
  PrefixAllocator allocator;
  for (const auto& prefix : original.used_prefixes()) {
    allocator.reserve(prefix);
  }
  Rng rng(seed);
  prepared.topo_outcome = anonymize_topology(prepared.configs, k_r, policy, rng,
                                             allocator);
  return prepared;
}

bool equivalent(const Prepared& prepared) {
  const Simulation sim(prepared.configs);
  return sim.extract_data_plane().restricted_to(
             prepared.index.real_hosts()) == prepared.index.data_plane();
}

TEST(RouteEquivalence, Figure2MinCostConverges) {
  // k_r = 4 forces all four routers to the same degree — fake links are
  // guaranteed. With min-cost pricing, equal-cost paths appear through the
  // fake links and Algorithm 1 must reject them.
  auto prepared = prepare(make_figure2(), 4, FakeLinkCostPolicy::kMinCost);
  ASSERT_GT(prepared.topo_outcome.total_links(), 0u);

  const auto outcome = enforce_route_equivalence(prepared.configs,
                                                 prepared.index);
  EXPECT_TRUE(outcome.converged);
  EXPECT_TRUE(equivalent(prepared));
}

TEST(RouteEquivalence, Figure2DefaultCostCannotBeFixed) {
  // Default-cost fake links create strictly shorter link-state paths;
  // filters can only black-hole, not restore (the §3.2 lesson). The
  // algorithm converges (no fake next hops remain) but the data plane is
  // NOT the original.
  auto prepared = prepare(make_figure2(), 4, FakeLinkCostPolicy::kDefault);
  ASSERT_GT(prepared.topo_outcome.total_links(), 0u);

  (void)enforce_route_equivalence(prepared.configs, prepared.index);
  EXPECT_FALSE(equivalent(prepared));
}

TEST(RouteEquivalence, Figure2LargeCostNeedsNoFilters) {
  // Over-priced fake links never attract traffic: the data plane is
  // already equivalent, and Algorithm 1 must add zero filters (which is
  // exactly what makes this policy identifiable, §3.2 option ii).
  auto prepared = prepare(make_figure2(), 4, FakeLinkCostPolicy::kLarge);
  ASSERT_GT(prepared.topo_outcome.total_links(), 0u);

  const auto outcome = enforce_route_equivalence(prepared.configs,
                                                 prepared.index);
  EXPECT_TRUE(outcome.converged);
  EXPECT_EQ(outcome.filters_added, 0);
  EXPECT_TRUE(equivalent(prepared));
}

TEST(RouteEquivalence, FiltersTargetOnlyFakeScopes) {
  auto prepared = prepare(make_bics(), 6, FakeLinkCostPolicy::kMinCost);
  (void)enforce_route_equivalence(prepared.configs, prepared.index);

  // Any interface carrying a distribute-list must be a fake-link end:
  // its link peer must NOT be an original neighbor.
  const Topology topo = Topology::build(prepared.configs);
  for (const auto& router : prepared.configs.routers) {
    if (!router.ospf) continue;
    for (const auto& dl : router.ospf->distribute_lists) {
      const int node = topo.find_node(router.hostname);
      bool found_fake_peer = false;
      for (int link_id : topo.links_of(node)) {
        const Link& link = topo.link(link_id);
        if (link.end_of(node).interface != dl.interface) continue;
        const auto& peer = topo.node(link.other_end(node).node);
        EXPECT_FALSE(
            prepared.index.is_original_edge(router.hostname, peer.name))
            << router.hostname << " filters real neighbor " << peer.name;
        found_fake_peer = true;
      }
      EXPECT_TRUE(found_fake_peer) << router.hostname << " " << dl.interface;
    }
  }
}

TEST(RouteEquivalence, IterationBoundHolds) {
  for (const auto maker : {make_bics, make_enterprise, make_university}) {
    auto prepared = prepare(maker(), 6, FakeLinkCostPolicy::kMinCost);
    const auto outcome =
        enforce_route_equivalence(prepared.configs, prepared.index);
    EXPECT_TRUE(outcome.converged);
    EXPECT_LE(outcome.iterations,
              static_cast<int>(prepared.topo_outcome.total_links()) + 1);
  }
}

TEST(RouteEquivalence, IdempotentOnceConverged) {
  auto prepared = prepare(make_university(), 6, FakeLinkCostPolicy::kMinCost);
  (void)enforce_route_equivalence(prepared.configs, prepared.index);
  const auto again =
      enforce_route_equivalence(prepared.configs, prepared.index);
  EXPECT_TRUE(again.converged);
  EXPECT_EQ(again.filters_added, 0);
  EXPECT_EQ(again.iterations, 1);
}

TEST(RouteEquivalence, NoFakeLinksNoFilters) {
  const auto original = make_fattree04();  // already 6-degree anonymous
  const Simulation sim(original);
  OriginalIndex index(sim);
  ConfigSet configs = original;
  const auto outcome = enforce_route_equivalence(configs, index);
  EXPECT_TRUE(outcome.converged);
  EXPECT_EQ(outcome.filters_added, 0);
}

}  // namespace
}  // namespace confmask
