// Incremental re-simulation (SimulationDelta dirty sets): the incremental
// constructor must be bit-identical to a fresh build after any sequence of
// filter edits, reuse everything a filter cannot affect, and recompute
// distance vectors only where the protocol requires it (RIP embeds filters
// in Bellman-Ford; OSPF distances are filter-independent).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/filters.hpp"
#include "src/netgen/networks.hpp"
#include "src/routing/simulation.hpp"
#include "src/util/ipv4.hpp"

namespace confmask {
namespace {

// FIB-level equality over every (router, destination) pair — stricter than
// comparing extracted data planes (it also covers black-holed entries).
void expect_same_fibs(const Simulation& actual, const Simulation& expected) {
  const auto& topo = expected.topology();
  for (int router = 0; router < topo.router_count(); ++router) {
    for (const int host : topo.host_ids()) {
      EXPECT_EQ(actual.fib(router, host), expected.fib(router, host))
          << "router " << topo.node(router).name << " -> host "
          << topo.node(host).name;
    }
  }
  EXPECT_TRUE(actual.extract_data_plane() == expected.extract_data_plane());
}

// Denies `host`'s prefix on the first router/next-hop where a filter
// actually takes (skipping the gateway's direct delivery), recording the
// edit in `delta`. Returns false if the network offers no such spot.
bool deny_first_transit_hop(ConfigSet& configs, const Simulation& sim,
                            int host, SimulationDelta& delta) {
  const auto& topo = sim.topology();
  const Ipv4Prefix prefix =
      configs.hosts[static_cast<std::size_t>(topo.node(host).config_index)]
          .prefix();
  for (int router = 0; router < topo.router_count(); ++router) {
    for (const NextHop& hop : sim.fib(router, host)) {
      if (hop.neighbor == host) continue;
      if (add_route_filter(configs, topo, router, topo.link(hop.link),
                           prefix)) {
        delta.record(router, prefix);
        return true;
      }
    }
  }
  return false;
}

TEST(IncrementalSim, EmptyDeltaReusesEverything) {
  const auto configs = make_figure2();
  const Simulation base(configs);
  const Simulation incremental(configs, base, SimulationDelta{});

  expect_same_fibs(incremental, base);
  const auto& stats = incremental.incremental_stats();
  EXPECT_EQ(stats.destinations_recomputed, 0);
  EXPECT_EQ(stats.destinations_reused, base.topology().host_count());
  EXPECT_EQ(stats.distance_vectors_recomputed, 0);
  EXPECT_EQ(stats.distance_vectors_reused, 0);
}

TEST(IncrementalSim, NonMatchingPrefixInvalidatesNothing) {
  const auto configs = make_figure2();
  const Simulation base(configs);
  SimulationDelta delta;
  delta.record(0, *Ipv4Prefix::parse("203.0.113.0/24"));
  const Simulation incremental(configs, base, delta);

  expect_same_fibs(incremental, base);
  EXPECT_EQ(incremental.incremental_stats().destinations_recomputed, 0);
}

TEST(IncrementalSim, OspfFilterReusesDistanceVectors) {
  auto configs = make_figure2();
  auto base = std::make_unique<const Simulation>(configs);
  const int h4 = base->topology().find_node("h4");
  ASSERT_GE(h4, 0);

  SimulationDelta delta;
  ASSERT_TRUE(deny_first_transit_hop(configs, *base, h4, delta));
  const Simulation incremental(configs, *base, delta);
  base.reset();  // incremental results must not alias the previous build
  const Simulation fresh(configs);

  expect_same_fibs(incremental, fresh);
  const auto& stats = incremental.incremental_stats();
  EXPECT_GT(stats.destinations_recomputed, 0);
  EXPECT_GT(stats.destinations_reused, 0);  // only h4's column was dirty
  // OSPF: link-state distances are filter-independent, so even the dirty
  // destination reuses its cached distance vector.
  EXPECT_GT(stats.distance_vectors_reused, 0);
  EXPECT_EQ(stats.distance_vectors_recomputed, 0);
}

TEST(IncrementalSim, RipFilterRecomputesDistanceVectors) {
  auto configs = make_isp_rip("rip", 8, 6, 12, 0x51D);
  const Simulation base(configs);
  const auto hosts = base.topology().host_ids();
  ASSERT_FALSE(hosts.empty());

  SimulationDelta delta;
  bool edited = false;
  for (const int host : hosts) {
    if (deny_first_transit_hop(configs, base, host, delta)) {
      edited = true;
      break;
    }
  }
  ASSERT_TRUE(edited);
  const Simulation incremental(configs, base, delta);
  const Simulation fresh(configs);

  expect_same_fibs(incremental, fresh);
  const auto& stats = incremental.incremental_stats();
  EXPECT_GT(stats.destinations_recomputed, 0);
  // RIP: filters participate in the distance-vector relaxation itself.
  EXPECT_GT(stats.distance_vectors_recomputed, 0);
  EXPECT_EQ(stats.distance_vectors_reused, 0);
}

TEST(IncrementalSim, RemovalIsInvalidatedLikeAddition) {
  auto configs = make_figure2();
  const Simulation original(configs);
  const int h1 = original.topology().find_node("h1");
  ASSERT_GE(h1, 0);

  SimulationDelta delta;
  ASSERT_TRUE(deny_first_transit_hop(configs, original, h1, delta));
  const Simulation filtered(configs, original, delta);

  // Undo the edit: the delta records the same (router, prefix) again.
  const auto change = delta.changes.front();
  delta.clear();
  const auto& topo = filtered.topology();
  bool removed = false;
  const int link_count = static_cast<int>(topo.links().size());
  for (int link_id = 0; link_id < link_count && !removed; ++link_id) {
    removed = remove_route_filter(configs, topo, change.router,
                                  topo.link(link_id), change.prefix);
  }
  ASSERT_TRUE(removed);
  delta.record(change.router, change.prefix);

  const Simulation back(configs, filtered, delta);
  const Simulation fresh(configs);
  expect_same_fibs(back, fresh);
  // Round trip: removing the only filter restores the original routing.
  expect_same_fibs(back, original);
}

TEST(IncrementalSim, ChainedIncrementalStepsStayExact) {
  // Algorithm 1 applies filters over many iterations, each re-simulating
  // incrementally from the last — drift would compound, so chain several
  // edits and compare against a fresh build only at the end.
  auto configs = make_figure2();
  auto current = std::make_unique<const Simulation>(configs);
  const auto hosts = current->topology().host_ids();
  int edits = 0;
  for (const int host : hosts) {
    SimulationDelta delta;
    if (!deny_first_transit_hop(configs, *current, host, delta)) continue;
    current = std::make_unique<const Simulation>(configs, *current, delta);
    ++edits;
  }
  ASSERT_GT(edits, 1);
  const Simulation fresh(configs);
  expect_same_fibs(*current, fresh);
}

}  // namespace
}  // namespace confmask
