// Packet-filter ACLs: parse/emit, data-plane drop semantics (black holes
// and multipath inconsistency), and — crucially — ConfMask preserving an
// ACL'd network's behaviour exactly, black holes included.
#include <gtest/gtest.h>

#include "src/config/emit.hpp"
#include "src/config/parse.hpp"
#include "src/core/confmask.hpp"
#include "src/core/utility_properties.hpp"
#include "src/netgen/builder.hpp"
#include "src/routing/simulation.hpp"

namespace confmask {
namespace {

ConfigSet diamond() {
  NetworkBuilder builder;
  for (const char* name : {"a", "l", "r", "b"}) {
    builder.router(name);
    builder.enable_ospf(name);
  }
  builder.link("a", "l");
  builder.link("a", "r");
  builder.link("l", "b");
  builder.link("r", "b");
  builder.host("hs", "a");
  builder.host("hd", "b");
  return builder.take();
}

/// Binds `acl` inbound on `router`'s interface towards `peer`.
void bind_inbound(ConfigSet& configs, const std::string& router,
                  const std::string& peer, int acl_number) {
  auto* config = configs.find_router(router);
  for (auto& iface : config->interfaces) {
    if (iface.description == "to-" + peer) iface.access_group_in = acl_number;
  }
}

TEST(Acl, ModelSemantics) {
  AccessList list{101, {}};
  const auto any = Ipv4Prefix{Ipv4Address{0u}, 0};
  const auto src = *Ipv4Prefix::parse("10.128.0.0/24");
  const auto dst = *Ipv4Prefix::parse("10.128.1.0/24");
  list.entries.push_back(AclEntry{false, src, dst});
  list.entries.push_back(AclEntry{true, any, any});
  EXPECT_FALSE(list.permits(src, dst));
  EXPECT_TRUE(list.permits(dst, src));  // reverse direction
  AccessList empty{102, {}};
  EXPECT_FALSE(empty.permits(src, dst));  // implicit deny
}

TEST(Acl, ParseEmitRoundTrip) {
  const char* text =
      "hostname r1\n"
      "interface Ethernet0\n"
      " ip address 10.0.0.0 255.255.255.254\n"
      " ip access-group 101 in\n"
      "!\n"
      "access-list 101 deny ip 10.128.0.0 0.0.0.255 10.128.1.0 0.0.0.255\n"
      "access-list 101 permit ip any any\n";
  const auto router = parse_router(text);
  ASSERT_EQ(router.access_lists.size(), 1u);
  EXPECT_EQ(router.access_lists[0].entries.size(), 2u);
  ASSERT_TRUE(router.interfaces[0].access_group_in.has_value());
  EXPECT_EQ(*router.interfaces[0].access_group_in, 101);
  const auto reemitted = emit_router(router);
  EXPECT_EQ(emit_router(parse_router(reemitted)), reemitted);
  EXPECT_NE(reemitted.find("access-list 101 permit ip any any"),
            std::string::npos);
}

TEST(Acl, ParseErrors) {
  EXPECT_THROW((void)parse_router("access-list 101 frobnicate ip any any\n"),
               ConfigParseError);
  EXPECT_THROW((void)parse_router("access-list 101 deny ip any\n"),
               ConfigParseError);
  EXPECT_THROW(
      (void)parse_router("access-list 101 deny ip 10.0.0.0 0.0.255.0 any\n"),
      ConfigParseError);
}

TEST(Acl, DropsOneDirectionOnly) {
  auto configs = diamond();
  const auto src = configs.find_host("hs")->prefix();
  const auto dst = configs.find_host("hd")->prefix();
  // Deny hs->hd on BOTH of b's inbound transit interfaces.
  auto* b = configs.find_router("b");
  b->access_lists.push_back(AccessList{
      101,
      {AclEntry{false, src, dst},
       AclEntry{true, Ipv4Prefix{Ipv4Address{0u}, 0},
                Ipv4Prefix{Ipv4Address{0u}, 0}}}});
  bind_inbound(configs, "b", "l", 101);
  bind_inbound(configs, "b", "r", 101);

  const Simulation sim(configs);
  const auto& topo = sim.topology();
  EXPECT_TRUE(sim.paths(topo.find_node("hs"), topo.find_node("hd")).empty());
  EXPECT_EQ(sim.paths(topo.find_node("hd"), topo.find_node("hs")).size(), 2u);
}

TEST(Acl, BreaksOnlyOneEcmpBranch) {
  auto configs = diamond();
  const auto src = configs.find_host("hs")->prefix();
  const auto dst = configs.find_host("hd")->prefix();
  auto* l = configs.find_router("l");
  l->access_lists.push_back(AccessList{
      101,
      {AclEntry{false, src, dst},
       AclEntry{true, Ipv4Prefix{Ipv4Address{0u}, 0},
                Ipv4Prefix{Ipv4Address{0u}, 0}}}});
  bind_inbound(configs, "l", "a", 101);

  const Simulation sim(configs);
  const auto& topo = sim.topology();
  const auto paths = sim.paths(topo.find_node("hs"), topo.find_node("hd"));
  ASSERT_EQ(paths.size(), 1u);  // multipath inconsistency: one branch drops
  EXPECT_EQ(paths[0][2], "r");
}

TEST(Acl, HostFacingInboundFilter) {
  auto configs = diamond();
  const auto src = configs.find_host("hs")->prefix();
  const auto dst = configs.find_host("hd")->prefix();
  auto* a = configs.find_router("a");
  a->access_lists.push_back(AccessList{
      102,
      {AclEntry{false, src, dst},
       AclEntry{true, Ipv4Prefix{Ipv4Address{0u}, 0},
                Ipv4Prefix{Ipv4Address{0u}, 0}}}});
  bind_inbound(configs, "a", "hs", 102);

  const Simulation sim(configs);
  const auto& topo = sim.topology();
  EXPECT_TRUE(sim.paths(topo.find_node("hs"), topo.find_node("hd")).empty());
}

TEST(Acl, ConfMaskPreservesAclBlackHolesExactly) {
  // A network with an intentional data-plane black hole: the anonymized
  // network must reproduce the black hole, not "fix" it (functional
  // equivalence is if-and-only-if, §3.1).
  auto configs = diamond();
  const auto src = configs.find_host("hs")->prefix();
  const auto dst = configs.find_host("hd")->prefix();
  auto* b = configs.find_router("b");
  b->access_lists.push_back(AccessList{
      101,
      {AclEntry{false, src, dst},
       AclEntry{true, Ipv4Prefix{Ipv4Address{0u}, 0},
                Ipv4Prefix{Ipv4Address{0u}, 0}}}});
  bind_inbound(configs, "b", "l", 101);
  bind_inbound(configs, "b", "r", 101);

  ConfMaskOptions options;
  options.k_r = 4;
  options.seed = 19;
  const auto result = run_confmask(configs, options);
  EXPECT_TRUE(result.functionally_equivalent);
  // The black-holed flow stays black-holed.
  EXPECT_EQ(result.original_dp.flows.count({"hs", "hd"}), 0u);
  EXPECT_EQ(result.anonymized_dp.flows.count({"hs", "hd"}), 0u);
  // The permitted direction stays intact.
  EXPECT_EQ(result.anonymized_dp.flows.count({"hd", "hs"}), 1u);
  EXPECT_TRUE(
      check_utility_properties(result.original_dp, result.anonymized_dp)
          .all());
  // The ACL lines survive into the anonymized output.
  const auto text = emit_router(*result.anonymized.find_router("b"));
  EXPECT_NE(text.find("access-list 101 deny ip"), std::string::npos);
}

}  // namespace
}  // namespace confmask
