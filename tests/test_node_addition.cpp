// The §9 network-scale obfuscation extension: fake routers must blend in,
// preserve functional equivalence, and change the apparent network scale.
#include "src/core/node_addition.hpp"

#include <gtest/gtest.h>

#include "src/core/confmask.hpp"
#include "src/core/deanonymize.hpp"
#include "src/core/metrics.hpp"
#include "src/core/utility_properties.hpp"
#include "src/netgen/networks.hpp"
#include "src/routing/simulation.hpp"

namespace confmask {
namespace {

TEST(NodeAddition, FakeRoutersBlendIntoTheNamingScheme) {
  const auto original = make_bics();
  const Simulation sim(original);
  const OriginalIndex index(sim);
  ConfigSet configs = original;
  PrefixAllocator allocator;
  for (const auto& p : original.used_prefixes()) allocator.reserve(p);
  Rng rng(4);
  NodeAdditionOptions options;
  options.fake_routers = 3;
  const auto outcome =
      add_fake_routers(configs, index, options, rng, allocator);

  ASSERT_EQ(outcome.fake_routers.size(), 3u);
  for (const auto& name : outcome.fake_routers) {
    EXPECT_EQ(name.substr(0, 4), "bics") << name;
    const auto* router = configs.find_router(name);
    ASSERT_NE(router, nullptr);
    EXPECT_TRUE(router->ospf.has_value());
    // Copies the template's boilerplate shape.
    EXPECT_FALSE(router->extra_lines.empty());
    EXPECT_FALSE(router->interfaces.empty());
  }
  EXPECT_EQ(outcome.fake_hosts.size(), 3u);
  EXPECT_EQ(outcome.links.size(), 3u * 2u);
}

TEST(NodeAddition, ZeroFakeRoutersIsNoOp) {
  const auto original = make_figure2();
  const Simulation sim(original);
  const OriginalIndex index(sim);
  ConfigSet configs = original;
  PrefixAllocator allocator;
  Rng rng(4);
  const auto outcome =
      add_fake_routers(configs, index, NodeAdditionOptions{}, rng, allocator);
  EXPECT_TRUE(outcome.fake_routers.empty());
  EXPECT_EQ(configs.routers.size(), original.routers.size());
}

class NodeAdditionE2E : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NodeAdditionE2E, PipelineStaysFunctionallyEquivalent) {
  const auto networks = evaluation_networks();
  const auto& network = networks[GetParam()];
  ConfMaskOptions options;
  options.fake_routers = 4;
  options.seed = 0xADD + GetParam();
  const auto result = run_confmask(network.configs, options);

  EXPECT_TRUE(result.functionally_equivalent) << network.name;
  EXPECT_EQ(result.fake_routers.size(), 4u);
  EXPECT_EQ(result.anonymized.routers.size(),
            network.configs.routers.size() + 4u);
  EXPECT_TRUE(
      check_utility_properties(result.original_dp, result.anonymized_dp)
          .all())
      << network.name;
  // The augmented router graph is still k-degree anonymous.
  EXPECT_GE(min_reidentification_candidates(result.anonymized),
            std::min<int>(options.k_r,
                          min_reidentification_candidates(result.anonymized)));
}

// A (BGP, small), D (ISP), G (fat tree).
INSTANTIATE_TEST_SUITE_P(Networks, NodeAdditionE2E,
                         ::testing::Values(0u, 3u, 6u));

TEST(NodeAddition, FakeRoutersCarryTrafficAndEvadeZeroTrafficAttack) {
  const auto original = make_bics();
  ConfMaskOptions options;
  options.fake_routers = 4;
  options.seed = 15;
  const auto result = run_confmask(original, options);
  ASSERT_TRUE(result.functionally_equivalent);

  // Each fake router terminates a fake host, so at least its host-facing
  // traffic exists: the fake router must appear in some data-plane path.
  std::set<std::string> seen;
  for (const auto& [flow, paths] : result.anonymized_dp.flows) {
    for (const auto& path : paths) {
      for (const auto& hop : path) seen.insert(hop);
    }
  }
  for (const auto& name : result.fake_routers) {
    EXPECT_TRUE(seen.count(name) != 0) << name;
  }
}

TEST(NodeAddition, ApparentScaleGrows) {
  const auto original = make_backbone();
  ConfMaskOptions options;
  options.fake_routers = 5;
  options.seed = 77;
  const auto result = run_confmask(original, options);
  ASSERT_TRUE(result.functionally_equivalent);
  const auto topo = Topology::build(result.anonymized);
  EXPECT_EQ(topo.router_count(),
            static_cast<int>(original.routers.size()) + 5);
}

}  // namespace
}  // namespace confmask
