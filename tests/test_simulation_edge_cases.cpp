// Degenerate and hostile inputs the simulator (and the pipeline driving
// it) must handle gracefully — shared configurations come from strangers.
#include <gtest/gtest.h>

#include "src/core/confmask.hpp"
#include "src/netgen/builder.hpp"
#include "src/netgen/networks.hpp"
#include "src/routing/simulation.hpp"

namespace confmask {
namespace {

TEST(SimulationEdgeCases, EmptyConfigSet) {
  const ConfigSet empty;
  const Simulation sim(empty);
  EXPECT_EQ(sim.topology().node_count(), 0);
  EXPECT_TRUE(sim.extract_data_plane().flows.empty());
}

TEST(SimulationEdgeCases, HostWithoutGatewayRouter) {
  ConfigSet configs;
  HostConfig orphan;
  orphan.hostname = "h1";
  orphan.address = *Ipv4Address::parse("10.128.0.10");
  orphan.prefix_length = 24;
  orphan.gateway = *Ipv4Address::parse("10.128.0.1");  // nobody owns this
  configs.hosts.push_back(orphan);

  const Simulation sim(configs);
  EXPECT_EQ(sim.topology().gateway_of(sim.topology().find_node("h1")), -1);
  EXPECT_TRUE(sim.extract_data_plane().flows.empty());
}

TEST(SimulationEdgeCases, RouterWithoutProtocolsForwardsNothing) {
  NetworkBuilder builder;
  builder.router("r1");
  builder.router("r2");
  builder.enable_ospf("r1");  // r2 runs nothing
  builder.link("r1", "r2");
  builder.host("h1", "r1");
  builder.host("h2", "r2");
  const auto configs = builder.take();

  const Simulation sim(configs);
  const auto& topo = sim.topology();
  // h2's LAN is not advertised anywhere: only direct delivery at r2
  // exists, transit flows black-hole.
  EXPECT_TRUE(sim.paths(topo.find_node("h1"), topo.find_node("h2")).empty());
  EXPECT_TRUE(sim.reaches(topo.find_node("r2"), topo.find_node("h2")));
}

TEST(SimulationEdgeCases, DisconnectedIgpIslands) {
  NetworkBuilder builder;
  for (const char* name : {"a1", "a2", "b1", "b2"}) {
    builder.router(name);
    builder.enable_ospf(name);
  }
  builder.link("a1", "a2");
  builder.link("b1", "b2");  // second island, no bridge
  builder.host("ha", "a1");
  builder.host("hb", "b1");
  const auto configs = builder.take();

  const Simulation sim(configs);
  const auto& topo = sim.topology();
  EXPECT_TRUE(sim.paths(topo.find_node("ha"), topo.find_node("hb")).empty());
  EXPECT_FALSE(
      sim.paths(topo.find_node("ha"), topo.find_node("ha")).size());
  EXPECT_LT(sim.igp_distance(topo.find_node("a1"), topo.find_node("b1")), 0);
}

TEST(SimulationEdgeCases, MultiAccessSegmentFormsClique) {
  // Three routers sharing one /24 segment: pairwise links, full mesh.
  ConfigSet configs;
  for (int i = 1; i <= 3; ++i) {
    RouterConfig router;
    router.hostname = "r" + std::to_string(i);
    InterfaceConfig iface;
    iface.name = "Ethernet0";
    iface.address = Ipv4Address{10, 9, 9, static_cast<std::uint8_t>(i)};
    iface.prefix_length = 24;
    router.interfaces.push_back(iface);
    router.ospf = OspfConfig{};
    router.ospf->networks.push_back(
        OspfNetwork{*Ipv4Prefix::parse("10.9.9.0/24"), 0});
    configs.routers.push_back(router);
  }
  const auto topo = Topology::build(configs);
  EXPECT_EQ(topo.router_link_count(), 3u);
  EXPECT_TRUE(topo.router_graph().connected());
}

TEST(SimulationEdgeCases, EcmpFanoutIsCappedNotUnbounded) {
  // A ladder of parallel stages: path count doubles per stage; the
  // walker's cap must bound enumeration without hanging.
  NetworkBuilder builder;
  builder.router("s0");
  builder.enable_ospf("s0");
  std::string prev = "s0";
  for (int stage = 0; stage < 10; ++stage) {
    const std::string up = "u" + std::to_string(stage);
    const std::string down = "d" + std::to_string(stage);
    const std::string next = "s" + std::to_string(stage + 1);
    for (const auto& name : {up, down, next}) {
      builder.router(name);
      builder.enable_ospf(name);
    }
    builder.link(prev, up);
    builder.link(prev, down);
    builder.link(up, next);
    builder.link(down, next);
    prev = next;
  }
  builder.host("hs", "s0");
  builder.host("hd", prev);
  const auto configs = builder.take();

  const Simulation sim(configs);
  const auto& topo = sim.topology();
  const auto paths = sim.paths(topo.find_node("hs"), topo.find_node("hd"));
  EXPECT_GT(paths.size(), 0u);
  EXPECT_LE(paths.size(), 256u);  // 2^10 = 1024 potential paths, capped
}

TEST(SimulationEdgeCases, ConfMaskRefusesNothingButReportsNonEquivalence) {
  // A network that is all black holes (no protocols anywhere): the
  // pipeline completes and reports honestly.
  ConfigSet configs;
  RouterConfig r1;
  r1.hostname = "r1";
  InterfaceConfig iface;
  iface.name = "Ethernet0";
  iface.address = *Ipv4Address::parse("10.128.0.1");
  iface.prefix_length = 24;
  r1.interfaces.push_back(iface);
  configs.routers.push_back(r1);
  HostConfig h1;
  h1.hostname = "h1";
  h1.address = *Ipv4Address::parse("10.128.0.10");
  h1.prefix_length = 24;
  h1.gateway = *Ipv4Address::parse("10.128.0.1");
  configs.hosts.push_back(h1);

  ConfMaskOptions options;
  options.k_r = 2;
  const auto result = run_confmask(configs, options);
  // One router, one host, no protocols: the (empty) data plane is
  // trivially preserved.
  EXPECT_TRUE(result.equivalence_converged);
  EXPECT_TRUE(result.functionally_equivalent);
  EXPECT_TRUE(result.original_dp.flows.empty());
}

TEST(SimulationEdgeCases, SelfFlowIsEmpty) {
  const auto configs = make_figure2();
  const Simulation sim(configs);
  const int h1 = sim.topology().find_node("h1");
  EXPECT_TRUE(sim.paths(h1, h1).empty());
}

}  // namespace
}  // namespace confmask
