// The serving layer's wire format and transport: flat JSON line
// parser/writer round-trips (including exact uint64 seeds), the protocol
// handler's submit/status/result/cancel/stats/shutdown surface, and a
// live confmaskd end-to-end over a real unix-domain socket.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>

#include "src/config/emit.hpp"
#include "src/config/parse.hpp"
#include "src/netgen/networks.hpp"
#include "src/service/client.hpp"
#include "src/service/daemon.hpp"
#include "src/service/job_journal.hpp"
#include "src/service/json_line.hpp"
#include "src/service/protocol.hpp"

namespace confmask {
namespace {

namespace fs = std::filesystem;

TEST(JsonLine, WriterOutputParsesBackExactly) {
  const std::string line = JsonLineWriter{}
                               .string("op", "submit")
                               .number("k_r", 6)
                               .real("noise_p", 0.1)
                               .boolean("ok", true)
                               .string("text", "a\"b\\c\nd\te")
                               .str();
  const auto parsed = parse_json_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(get_string(*parsed, "op"), "submit");
  EXPECT_EQ(get_int(*parsed, "k_r"), 6);
  EXPECT_EQ(get_double(*parsed, "noise_p"), 0.1);
  EXPECT_EQ(get_bool(*parsed, "ok"), true);
  EXPECT_EQ(get_string(*parsed, "text"), "a\"b\\c\nd\te");
}

TEST(JsonLine, U64SeedsSurviveAboveDoublePrecision) {
  // 2^53 + 1 is the first integer a double cannot represent; a seed up
  // there must still round-trip exactly through the wire format.
  const std::uint64_t seed = (1ULL << 53) + 1;
  const std::string line = JsonLineWriter{}.number_u64("seed", seed).str();
  const auto parsed = parse_json_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(get_u64(*parsed, "seed"), seed);
  // The double view is lossy here — that is exactly why get_u64 exists.
  EXPECT_EQ(get_u64(*parsed, "missing"), std::nullopt);

  const std::uint64_t max = 0xFFFFFFFFFFFFFFFFULL;
  const auto parsed_max =
      parse_json_line(JsonLineWriter{}.number_u64("seed", max).str());
  ASSERT_TRUE(parsed_max.has_value());
  EXPECT_EQ(get_u64(*parsed_max, "seed"), max);
}

TEST(JsonLine, ErrorReportingOverloadNamesTheDeviation) {
  std::string error;
  // Duplicate keys are the classic smuggling vector (two parsers, two
  // winners): the rejection must name the offending key out loud.
  EXPECT_FALSE(
      parse_json_line("{\"seed\": 1, \"seed\": 2}", &error).has_value());
  EXPECT_NE(error.find("duplicate key \"seed\""), std::string::npos) << error;
  EXPECT_FALSE(parse_json_line("{\"a\": 1} trailing", &error).has_value());
  EXPECT_NE(error.find("trailing bytes"), std::string::npos) << error;
  EXPECT_FALSE(parse_json_line("{\"a\": \"unterminated", &error).has_value());
  EXPECT_NE(error.find("unterminated string"), std::string::npos) << error;
  EXPECT_FALSE(parse_json_line("[1]", &error).has_value());
  EXPECT_NE(error.find("expected '{'"), std::string::npos) << error;
  // A clean parse leaves the error untouched.
  error.clear();
  EXPECT_TRUE(parse_json_line("{\"a\": 1}", &error).has_value());
  EXPECT_TRUE(error.empty());
}

TEST(ClientBackoff, ScheduleGrowsHonorsHintAndStaysDeterministic) {
  RetryConfig config;
  config.base_ms = 100;
  config.max_delay_ms = 5'000;
  // Jitter is bounded: every delay within ±25% of the nominal exponential
  // value, and the cap is never exceeded.
  std::uint32_t previous_nominal = 0;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    const std::uint32_t delay = backoff_delay_ms(config, attempt, 0);
    const std::uint64_t nominal =
        std::min<std::uint64_t>(100ULL << (attempt - 1), 5'000);
    EXPECT_GE(delay, nominal - nominal / 4) << "attempt " << attempt;
    EXPECT_LE(delay, config.max_delay_ms) << "attempt " << attempt;
    EXPECT_GE(nominal, previous_nominal);
    previous_nominal = static_cast<std::uint32_t>(nominal);
  }
  // The server's own hint is a floor (before the cap): clients never
  // retry earlier than the daemon said capacity returns.
  EXPECT_GE(backoff_delay_ms(config, 1, 2'000), 2'000u - 2'000u / 4);
  EXPECT_LE(backoff_delay_ms(config, 1, 60'000), config.max_delay_ms);
  // Same config + attempt → same delay: the schedule is pinnable in tests
  // and differs across seeds so client bursts fan out.
  EXPECT_EQ(backoff_delay_ms(config, 3, 0), backoff_delay_ms(config, 3, 0));
  RetryConfig other = config;
  other.jitter_seed = 2;
  bool diverged = false;
  for (int attempt = 1; attempt <= 8 && !diverged; ++attempt) {
    diverged = backoff_delay_ms(config, attempt, 0) !=
               backoff_delay_ms(other, attempt, 0);
  }
  EXPECT_TRUE(diverged);
}

TEST(ClientBackoff, JitterNeverUndercutsServerHintAtTheBoundary) {
  RetryConfig config;
  config.base_ms = 100;
  config.max_delay_ms = 5'000;
  // The hint is the server's own earliest-capacity estimate: across many
  // jitter seeds and attempts, no delay may land below it. (The original
  // order applied jitter AFTER the hint clamp, so the downward half of the
  // window undercut the hint by up to 25% — a guaranteed re-rejection.)
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    config.jitter_seed = seed;
    for (int attempt = 1; attempt <= 6; ++attempt) {
      const std::uint32_t delay = backoff_delay_ms(config, attempt, 3'000);
      EXPECT_GE(delay, 3'000u) << "seed " << seed << " attempt " << attempt;
      EXPECT_LE(delay, config.max_delay_ms)
          << "seed " << seed << " attempt " << attempt;
    }
    // Hint exactly at the client's cap: no room in either direction.
    EXPECT_EQ(backoff_delay_ms(config, 1, 5'000), 5'000u);
  }
}

TEST(JsonLine, StrictParserRejectsEverythingOutsideTheSubset) {
  EXPECT_FALSE(parse_json_line("").has_value());
  EXPECT_FALSE(parse_json_line("[1, 2]").has_value());
  EXPECT_FALSE(parse_json_line("{\"a\": [1]}").has_value());   // array
  EXPECT_FALSE(parse_json_line("{\"a\": {\"b\": 1}}").has_value());  // nested
  EXPECT_FALSE(parse_json_line("{\"a\": null}").has_value());  // null
  EXPECT_FALSE(parse_json_line("{\"a\": 1,}").has_value());    // trailing ,
  EXPECT_FALSE(parse_json_line("{\"a\": 1} x").has_value());   // trailing
  EXPECT_FALSE(parse_json_line("{\"a\": 1, \"a\": 2}").has_value());  // dup
  EXPECT_FALSE(parse_json_line("{\"a\": 'x'}").has_value());
  EXPECT_TRUE(parse_json_line("{}").has_value());
  EXPECT_TRUE(parse_json_line("  {\"a\": -1.5e3}  ").has_value());
}

class ProtocolTest : public testing::Test {
 protected:
  static fs::path fresh_cache_dir() {
    const fs::path dir =
        fs::path(testing::TempDir()) /
        (std::string("confmask_proto_") +
         testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir);
    return dir;
  }

  ProtocolTest()
      : cache_(fresh_cache_dir()),
        scheduler_(&cache_, {}),
        handler_(&scheduler_, &cache_) {}

  ~ProtocolTest() override {
    scheduler_.shutdown(JobScheduler::ShutdownMode::kCancelPending);
    fs::remove_all(cache_.root());
  }

  JsonObject handle(const std::string& line,
                    ShutdownCommand* shutdown = nullptr) {
    const auto parsed = parse_json_line(handler_.handle(line, shutdown));
    EXPECT_TRUE(parsed.has_value());
    return parsed.value_or(JsonObject{});
  }

  std::string submit_line(std::uint64_t seed) {
    return JsonLineWriter{}
        .string("op", "submit")
        .string("configs", canonical_config_set_text(make_figure2()))
        .number("k_r", 2)
        .number("k_h", 2)
        .number_u64("seed", seed)
        .str();
  }

  ArtifactCache cache_;
  JobScheduler scheduler_;
  ProtocolHandler handler_;
};

TEST_F(ProtocolTest, SubmitStatusResultLifecycle) {
  const JsonObject submitted = handle(submit_line(1));
  ASSERT_EQ(get_bool(submitted, "ok"), true);
  const auto job = get_u64(submitted, "job");
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(get_string(submitted, "cache_key")->size(), 16u);

  ASSERT_TRUE(scheduler_.wait(*job));
  const JsonObject status = handle(
      JsonLineWriter{}.string("op", "status").number_u64("job", *job).str());
  EXPECT_EQ(get_bool(status, "ok"), true);
  EXPECT_EQ(get_string(status, "state"), "done");
  EXPECT_EQ(get_bool(status, "cache_hit"), false);

  const JsonObject result = handle(
      JsonLineWriter{}.string("op", "result").number_u64("job", *job).str());
  EXPECT_EQ(get_bool(result, "ok"), true);
  const auto bundle = get_string(result, "configs");
  ASSERT_TRUE(bundle.has_value());
  // The artifact is a parseable anonymized network.
  const ConfigSet anonymized = parse_config_set(*bundle);
  EXPECT_GE(anonymized.routers.size(), make_figure2().routers.size());
  EXPECT_FALSE(get_string(result, "diagnostics")->empty());
  EXPECT_FALSE(get_string(result, "metrics")->empty());

  // Resubmission: same key, served from cache.
  const JsonObject resubmitted = handle(submit_line(1));
  const auto second = get_u64(resubmitted, "job");
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(get_string(resubmitted, "cache_key"),
            get_string(submitted, "cache_key"));
  ASSERT_TRUE(scheduler_.wait(*second));
  const JsonObject second_status = handle(JsonLineWriter{}
                                              .string("op", "status")
                                              .number_u64("job", *second)
                                              .str());
  EXPECT_EQ(get_bool(second_status, "cache_hit"), true);

  const JsonObject stats =
      handle(JsonLineWriter{}.string("op", "stats").str());
  EXPECT_EQ(get_u64(stats, "submitted"), 2u);
  EXPECT_EQ(get_u64(stats, "completed"), 2u);
  EXPECT_EQ(get_u64(stats, "cache_hits"), 1u);
  EXPECT_EQ(get_u64(stats, "cache_stores"), 1u);
  EXPECT_EQ(get_string(stats, "stamp"), cache_.stamp());
}

TEST_F(ProtocolTest, ErrorsAreLoudAndTyped) {
  EXPECT_EQ(get_bool(handle("not json"), "ok"), false);
  EXPECT_EQ(get_bool(handle("{\"no_op\": 1}"), "ok"), false);
  EXPECT_EQ(get_bool(handle("{\"op\": \"frobnicate\"}"), "ok"), false);
  // submit without configs / with unparsable configs.
  EXPECT_EQ(get_bool(handle("{\"op\": \"submit\"}"), "ok"), false);
  const JsonObject bad_configs = handle(JsonLineWriter{}
                                            .string("op", "submit")
                                            .string("configs", "garbage")
                                            .str());
  EXPECT_EQ(get_bool(bad_configs, "ok"), false);
  EXPECT_FALSE(get_string(bad_configs, "error")->empty());
  // Wrong field kinds.
  EXPECT_EQ(
      get_bool(handle("{\"op\": \"status\", \"job\": \"one\"}"), "ok"),
      false);
  EXPECT_EQ(get_bool(handle("{\"op\": \"result\", \"job\": 999}"), "ok"),
            false);
  // Unknown shutdown mode does NOT set the flag.
  ShutdownCommand shutdown;
  EXPECT_EQ(get_bool(handle("{\"op\": \"shutdown\", \"mode\": \"halt\"}",
                            &shutdown),
                     "ok"),
            false);
  EXPECT_FALSE(shutdown.requested);
}

TEST_F(ProtocolTest, MalformedLinesGetNamedParseErrors) {
  const JsonObject duplicate =
      handle("{\"op\": \"submit\", \"seed\": 1, \"seed\": 2}");
  EXPECT_EQ(get_bool(duplicate, "ok"), false);
  EXPECT_NE(get_string(duplicate, "error")->find("duplicate key \"seed\""),
            std::string::npos)
      << *get_string(duplicate, "error");

  const JsonObject deadline = handle(JsonLineWriter{}
                                         .string("op", "submit")
                                         .string("configs", "x")
                                         .string("deadline_ms", "soon")
                                         .str());
  EXPECT_EQ(get_bool(deadline, "ok"), false);
}

TEST_F(ProtocolTest, DeadlineMsMustBeAnUnsignedInteger) {
  const JsonObject response =
      handle(JsonLineWriter{}
                 .string("op", "submit")
                 .string("configs", canonical_config_set_text(make_figure2()))
                 .string("deadline_ms", "soon")
                 .str());
  EXPECT_EQ(get_bool(response, "ok"), false);
  EXPECT_NE(get_string(response, "error")->find("deadline_ms"),
            std::string::npos);
}

TEST_F(ProtocolTest, PingReportsHealthAndVitals) {
  const JsonObject pong = handle("{\"op\": \"ping\"}");
  EXPECT_EQ(get_bool(pong, "ok"), true);
  EXPECT_FALSE(get_string(pong, "version")->empty());
  EXPECT_EQ(get_string(pong, "stamp"), cache_.stamp());
  EXPECT_TRUE(get_u64(pong, "uptime_ms").has_value());
  EXPECT_EQ(get_u64(pong, "queued"), 0u);
  EXPECT_EQ(get_u64(pong, "running"), 0u);
  EXPECT_EQ(get_u64(pong, "cache_entries"), 0u);
  EXPECT_EQ(get_u64(pong, "cache_budget_bytes"), 0u);  // unbounded here
  // No journal attached to this handler: the probe says so.
  EXPECT_EQ(get_bool(pong, "journal"), false);
  EXPECT_EQ(pong.count("journal_appends"), 0u);
}

TEST(Protocol, QueueFullSubmitRejectionCarriesRetryAfterMs) {
  const fs::path dir =
      fs::path(testing::TempDir()) / "confmask_proto_retry_after";
  fs::remove_all(dir);
  ArtifactCache cache(dir);
  JobScheduler::Options options;
  options.max_pending = 0;
  JobScheduler scheduler(&cache, options);
  ProtocolHandler handler(&scheduler, &cache);
  const auto response = parse_json_line(handler.handle(
      JsonLineWriter{}
          .string("op", "submit")
          .string("configs", canonical_config_set_text(make_figure2()))
          .str(),
      nullptr));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(get_bool(*response, "ok"), false);
  EXPECT_NE(get_string(*response, "error")->find("queue full"),
            std::string::npos);
  const auto hint = get_u64(*response, "retry_after_ms");
  ASSERT_TRUE(hint.has_value());  // transient: the client should retry
  EXPECT_GT(*hint, 0u);
  scheduler.shutdown(JobScheduler::ShutdownMode::kCancelPending);
  fs::remove_all(dir);
}

TEST(Protocol, PingWithJournalAttachedReportsJournalVitals) {
  const fs::path dir = fs::path(testing::TempDir()) / "confmask_proto_jping";
  fs::remove_all(dir);
  JobJournal journal(dir / "jobs.wal");
  ArtifactCache cache(dir / "cache");
  JobScheduler::Options options;
  options.journal = &journal;
  JobScheduler scheduler(&cache, options);
  ProtocolHandler handler(&scheduler, &cache, &journal);

  const auto submitted = parse_json_line(handler.handle(
      JsonLineWriter{}
          .string("op", "submit")
          .string("configs", canonical_config_set_text(make_figure2()))
          .number("k_r", 2)
          .number("k_h", 2)
          .number_u64("deadline_ms", 60'000)
          .str(),
      nullptr));
  ASSERT_TRUE(submitted.has_value());
  ASSERT_EQ(get_bool(*submitted, "ok"), true)
      << get_string(*submitted, "error").value_or("");
  ASSERT_TRUE(scheduler.wait(*get_u64(*submitted, "job")));

  const auto pong =
      parse_json_line(handler.handle("{\"op\": \"ping\"}", nullptr));
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(get_bool(*pong, "journal"), true);
  // The accepted submit and its state transitions were all journaled.
  ASSERT_TRUE(get_u64(*pong, "journal_appends").has_value());
  EXPECT_GE(*get_u64(*pong, "journal_appends"), 2u);
  EXPECT_EQ(get_u64(*pong, "journal_append_failures"), 0u);
  scheduler.shutdown(JobScheduler::ShutdownMode::kDrain);
  fs::remove_all(dir);
}

TEST_F(ProtocolTest, ShutdownRequestSetsCommand) {
  ShutdownCommand shutdown;
  const JsonObject response = handle(
      "{\"op\": \"shutdown\", \"mode\": \"cancel\"}", &shutdown);
  EXPECT_EQ(get_bool(response, "ok"), true);
  EXPECT_TRUE(shutdown.requested);
  EXPECT_EQ(shutdown.mode, JobScheduler::ShutdownMode::kCancelPending);
}

TEST_F(ProtocolTest, SubscribeAcksKnownJobsAndRefusesWithoutStreaming) {
  const JsonObject submitted = handle(submit_line(11));
  const auto job = get_u64(submitted, "job");
  ASSERT_TRUE(job.has_value());

  SubscribeCommand subscribe;
  const auto ack = parse_json_line(handler_.handle(
      JsonLineWriter{}.string("op", "subscribe").number_u64("job", *job).str(),
      nullptr, &subscribe));
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(get_bool(*ack, "ok"), true);
  EXPECT_EQ(get_string(*ack, "op"), "subscribe");
  EXPECT_EQ(get_u64(*ack, "job"), *job);
  EXPECT_TRUE(get_string(*ack, "state").has_value());
  EXPECT_TRUE(subscribe.requested);
  EXPECT_EQ(subscribe.job, *job);

  // Unknown job: loud error, no subscription recorded.
  SubscribeCommand unknown;
  const auto bad = parse_json_line(handler_.handle(
      "{\"op\": \"subscribe\", \"job\": 999}", nullptr, &unknown));
  ASSERT_TRUE(bad.has_value());
  EXPECT_EQ(get_bool(*bad, "ok"), false);
  EXPECT_FALSE(unknown.requested);

  // A transport that cannot stream (no SubscribeCommand out-param) must
  // refuse rather than ack a stream it will never deliver.
  const JsonObject refused = handle(
      JsonLineWriter{}.string("op", "subscribe").number_u64("job", *job).str());
  EXPECT_EQ(get_bool(refused, "ok"), false);

  scheduler_.wait(*job);
}

TEST(DaemonE2E, RetryBudgetExhaustionIsTypedAndDeadlineCapped) {
  const std::string socket_path =
      "/tmp/confmaskd_retry_" + std::to_string(::getpid()) + ".sock";
  const fs::path cache_dir =
      fs::path(testing::TempDir()) / "confmask_retry_cache";
  fs::remove_all(cache_dir);

  Daemon::Options options;
  options.socket_path = socket_path;
  options.cache_dir = cache_dir;
  options.max_pending = 0;  // every submit is load-shed with a retry hint
  Daemon daemon(options);
  std::thread server([&daemon] { EXPECT_EQ(daemon.run(), 0); });
  const std::string stats_line = JsonLineWriter{}.string("op", "stats").str();
  std::optional<std::string> up;
  for (int i = 0; i < 250 && !up; ++i) {
    up = client_roundtrip(socket_path, stats_line);
    if (!up) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(up.has_value()) << "daemon never came up";

  const std::string configs = canonical_config_set_text(make_figure2());
  RetryConfig config;
  config.max_attempts = 3;
  config.base_ms = 1;
  config.max_delay_ms = 5;

  // Attempt budget: the client retries through the schedule, then stops
  // with a TYPED budget failure that still carries the final response and
  // the server's last hint.
  TransportError error;
  const auto response = client_submit_with_retry(
      socket_path,
      JsonLineWriter{}.string("op", "submit").string("configs", configs).str(),
      config, &error);
  ASSERT_TRUE(response.has_value());  // the rejection line, not a timeout
  const auto parsed = parse_json_line(*response);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(get_bool(*parsed, "ok"), false);
  EXPECT_EQ(error.failure, TransportFailure::kRetryBudgetExhausted);
  EXPECT_GT(error.retry_after_ms, 0u);

  // Deadline cap: with a 1ms job deadline, sleeping even one backoff
  // delay would admit a job the server must immediately expire, so the
  // client gives up before its attempt budget.
  const auto start = std::chrono::steady_clock::now();
  TransportError capped;
  const auto capped_response = client_submit_with_retry(
      socket_path,
      JsonLineWriter{}
          .string("op", "submit")
          .string("configs", configs)
          .number_u64("deadline_ms", 1)
          .str(),
      config, &capped);
  ASSERT_TRUE(capped_response.has_value());
  EXPECT_EQ(capped.failure, TransportFailure::kRetryBudgetExhausted);
  // No full backoff schedule was slept: the server hint floor is 100ms
  // per retry, so an early stop finishes well under one full schedule.
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(150));

  const auto bye = client_roundtrip(
      socket_path, JsonLineWriter{}.string("op", "shutdown").str());
  ASSERT_TRUE(bye.has_value());
  server.join();
  fs::remove_all(cache_dir);
}

TEST(DaemonE2E, SubmitTwiceOverUnixSocketSecondIsCacheHit) {
  // Keep the socket path short: sun_path caps out around 108 bytes.
  const std::string socket_path =
      "/tmp/confmaskd_test_" + std::to_string(::getpid()) + ".sock";
  const fs::path cache_dir =
      fs::path(testing::TempDir()) / "confmask_daemon_cache";
  fs::remove_all(cache_dir);

  Daemon::Options options;
  options.socket_path = socket_path;
  options.cache_dir = cache_dir;
  options.max_concurrent_jobs = 2;
  Daemon daemon(options);
  std::thread server([&daemon] { EXPECT_EQ(daemon.run(), 0); });

  // Wait for the daemon to come up (bind + listen happen inside run()).
  const std::string stats_line = JsonLineWriter{}.string("op", "stats").str();
  std::optional<std::string> up;
  for (int i = 0; i < 250 && !up; ++i) {
    up = client_roundtrip(socket_path, stats_line);
    if (!up) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(up.has_value()) << "daemon never came up";

  const std::string submit = JsonLineWriter{}
                                 .string("op", "submit")
                                 .string("configs",
                                         canonical_config_set_text(
                                             make_figure2()))
                                 .number("k_r", 2)
                                 .number("k_h", 2)
                                 .number_u64("seed", 11)
                                 .str();
  std::string first_configs;
  for (const bool expect_hit : {false, true}) {
    const auto submitted = client_roundtrip(socket_path, submit);
    ASSERT_TRUE(submitted.has_value());
    const auto submit_response = parse_json_line(*submitted);
    ASSERT_TRUE(submit_response.has_value());
    ASSERT_EQ(get_bool(*submit_response, "ok"), true) << *submitted;
    const auto job = get_u64(*submit_response, "job");
    ASSERT_TRUE(job.has_value());

    // Poll status until terminal.
    const std::string status_line = JsonLineWriter{}
                                        .string("op", "status")
                                        .number_u64("job", *job)
                                        .str();
    std::optional<std::string> state;
    for (int i = 0; i < 1500; ++i) {
      const auto status = client_roundtrip(socket_path, status_line);
      ASSERT_TRUE(status.has_value());
      const auto parsed = parse_json_line(*status);
      ASSERT_TRUE(parsed.has_value());
      state = get_string(*parsed, "state");
      if (state == "done" || state == "failed") {
        EXPECT_EQ(get_bool(*parsed, "cache_hit"), expect_hit) << *status;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_EQ(state, "done");

    const auto result = client_roundtrip(
        socket_path, JsonLineWriter{}
                         .string("op", "result")
                         .number_u64("job", *job)
                         .str());
    ASSERT_TRUE(result.has_value());
    const auto result_response = parse_json_line(*result);
    ASSERT_TRUE(result_response.has_value());
    const auto configs = get_string(*result_response, "configs");
    ASSERT_TRUE(configs.has_value());
    if (expect_hit) {
      // The acceptance bar: cached replay is byte-identical.
      EXPECT_EQ(*configs, first_configs);
    } else {
      first_configs = *configs;
      EXPECT_FALSE(first_configs.empty());
    }
  }

  // Stats prove the second run came from the cache.
  const auto stats = client_roundtrip(socket_path, stats_line);
  ASSERT_TRUE(stats.has_value());
  const auto stats_response = parse_json_line(*stats);
  ASSERT_TRUE(stats_response.has_value());
  EXPECT_EQ(get_u64(*stats_response, "cache_hits"), 1u);
  EXPECT_EQ(get_u64(*stats_response, "cache_stores"), 1u);
  EXPECT_EQ(get_u64(*stats_response, "completed"), 2u);

  // Clean shutdown over the protocol; run() returns and removes the socket.
  const auto bye = client_roundtrip(
      socket_path, JsonLineWriter{}.string("op", "shutdown").str());
  ASSERT_TRUE(bye.has_value());
  server.join();
  EXPECT_FALSE(fs::exists(socket_path));
  fs::remove_all(cache_dir);
}

}  // namespace
}  // namespace confmask
