file(REMOVE_RECURSE
  "CMakeFiles/test_property_random_networks.dir/test_property_random_networks.cpp.o"
  "CMakeFiles/test_property_random_networks.dir/test_property_random_networks.cpp.o.d"
  "test_property_random_networks"
  "test_property_random_networks.pdb"
  "test_property_random_networks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_random_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
