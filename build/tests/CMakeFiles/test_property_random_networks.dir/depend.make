# Empty dependencies file for test_property_random_networks.
# This may be replaced when dependencies are built.
