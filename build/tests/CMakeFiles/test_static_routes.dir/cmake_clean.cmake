file(REMOVE_RECURSE
  "CMakeFiles/test_static_routes.dir/test_static_routes.cpp.o"
  "CMakeFiles/test_static_routes.dir/test_static_routes.cpp.o.d"
  "test_static_routes"
  "test_static_routes.pdb"
  "test_static_routes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_static_routes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
