# Empty compiler generated dependencies file for test_static_routes.
# This may be replaced when dependencies are built.
