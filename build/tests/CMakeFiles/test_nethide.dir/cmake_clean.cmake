file(REMOVE_RECURSE
  "CMakeFiles/test_nethide.dir/test_nethide.cpp.o"
  "CMakeFiles/test_nethide.dir/test_nethide.cpp.o.d"
  "test_nethide"
  "test_nethide.pdb"
  "test_nethide[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nethide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
