file(REMOVE_RECURSE
  "CMakeFiles/test_route_equivalence.dir/test_route_equivalence.cpp.o"
  "CMakeFiles/test_route_equivalence.dir/test_route_equivalence.cpp.o.d"
  "test_route_equivalence"
  "test_route_equivalence.pdb"
  "test_route_equivalence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_route_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
