# Empty dependencies file for test_simulation_edge_cases.
# This may be replaced when dependencies are built.
