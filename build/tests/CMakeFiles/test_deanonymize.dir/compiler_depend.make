# Empty compiler generated dependencies file for test_deanonymize.
# This may be replaced when dependencies are built.
