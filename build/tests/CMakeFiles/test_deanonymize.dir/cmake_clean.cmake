file(REMOVE_RECURSE
  "CMakeFiles/test_deanonymize.dir/test_deanonymize.cpp.o"
  "CMakeFiles/test_deanonymize.dir/test_deanonymize.cpp.o.d"
  "test_deanonymize"
  "test_deanonymize.pdb"
  "test_deanonymize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deanonymize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
