file(REMOVE_RECURSE
  "CMakeFiles/test_config_roundtrip.dir/test_config_roundtrip.cpp.o"
  "CMakeFiles/test_config_roundtrip.dir/test_config_roundtrip.cpp.o.d"
  "test_config_roundtrip"
  "test_config_roundtrip.pdb"
  "test_config_roundtrip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
