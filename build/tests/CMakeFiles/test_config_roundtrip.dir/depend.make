# Empty dependencies file for test_config_roundtrip.
# This may be replaced when dependencies are built.
