file(REMOVE_RECURSE
  "CMakeFiles/test_simulation_rip.dir/test_simulation_rip.cpp.o"
  "CMakeFiles/test_simulation_rip.dir/test_simulation_rip.cpp.o.d"
  "test_simulation_rip"
  "test_simulation_rip.pdb"
  "test_simulation_rip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simulation_rip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
