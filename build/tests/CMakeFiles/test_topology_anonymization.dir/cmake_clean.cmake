file(REMOVE_RECURSE
  "CMakeFiles/test_topology_anonymization.dir/test_topology_anonymization.cpp.o"
  "CMakeFiles/test_topology_anonymization.dir/test_topology_anonymization.cpp.o.d"
  "test_topology_anonymization"
  "test_topology_anonymization.pdb"
  "test_topology_anonymization[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topology_anonymization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
