# Empty dependencies file for test_topology_anonymization.
# This may be replaced when dependencies are built.
