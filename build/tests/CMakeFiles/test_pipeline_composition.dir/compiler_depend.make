# Empty compiler generated dependencies file for test_pipeline_composition.
# This may be replaced when dependencies are built.
