file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_composition.dir/test_pipeline_composition.cpp.o"
  "CMakeFiles/test_pipeline_composition.dir/test_pipeline_composition.cpp.o.d"
  "test_pipeline_composition"
  "test_pipeline_composition.pdb"
  "test_pipeline_composition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
