file(REMOVE_RECURSE
  "CMakeFiles/test_route_anonymity.dir/test_route_anonymity.cpp.o"
  "CMakeFiles/test_route_anonymity.dir/test_route_anonymity.cpp.o.d"
  "test_route_anonymity"
  "test_route_anonymity.pdb"
  "test_route_anonymity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_route_anonymity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
