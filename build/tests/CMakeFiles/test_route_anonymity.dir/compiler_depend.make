# Empty compiler generated dependencies file for test_route_anonymity.
# This may be replaced when dependencies are built.
