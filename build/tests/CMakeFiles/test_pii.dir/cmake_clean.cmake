file(REMOVE_RECURSE
  "CMakeFiles/test_pii.dir/test_pii.cpp.o"
  "CMakeFiles/test_pii.dir/test_pii.cpp.o.d"
  "test_pii"
  "test_pii.pdb"
  "test_pii[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pii.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
