# Empty dependencies file for test_pii.
# This may be replaced when dependencies are built.
