# Empty dependencies file for test_node_addition.
# This may be replaced when dependencies are built.
