file(REMOVE_RECURSE
  "CMakeFiles/test_node_addition.dir/test_node_addition.cpp.o"
  "CMakeFiles/test_node_addition.dir/test_node_addition.cpp.o.d"
  "test_node_addition"
  "test_node_addition.pdb"
  "test_node_addition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node_addition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
