# Empty compiler generated dependencies file for test_simulation_bgp.
# This may be replaced when dependencies are built.
