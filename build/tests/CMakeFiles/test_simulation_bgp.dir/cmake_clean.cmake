file(REMOVE_RECURSE
  "CMakeFiles/test_simulation_bgp.dir/test_simulation_bgp.cpp.o"
  "CMakeFiles/test_simulation_bgp.dir/test_simulation_bgp.cpp.o.d"
  "test_simulation_bgp"
  "test_simulation_bgp.pdb"
  "test_simulation_bgp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simulation_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
