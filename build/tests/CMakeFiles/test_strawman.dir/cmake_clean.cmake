file(REMOVE_RECURSE
  "CMakeFiles/test_strawman.dir/test_strawman.cpp.o"
  "CMakeFiles/test_strawman.dir/test_strawman.cpp.o.d"
  "test_strawman"
  "test_strawman.pdb"
  "test_strawman[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_strawman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
