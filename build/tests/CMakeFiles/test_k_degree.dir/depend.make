# Empty dependencies file for test_k_degree.
# This may be replaced when dependencies are built.
