file(REMOVE_RECURSE
  "CMakeFiles/test_k_degree.dir/test_k_degree.cpp.o"
  "CMakeFiles/test_k_degree.dir/test_k_degree.cpp.o.d"
  "test_k_degree"
  "test_k_degree.pdb"
  "test_k_degree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_k_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
