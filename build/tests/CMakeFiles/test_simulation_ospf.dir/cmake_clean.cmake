file(REMOVE_RECURSE
  "CMakeFiles/test_simulation_ospf.dir/test_simulation_ospf.cpp.o"
  "CMakeFiles/test_simulation_ospf.dir/test_simulation_ospf.cpp.o.d"
  "test_simulation_ospf"
  "test_simulation_ospf.pdb"
  "test_simulation_ospf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simulation_ospf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
