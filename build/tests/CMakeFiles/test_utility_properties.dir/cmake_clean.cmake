file(REMOVE_RECURSE
  "CMakeFiles/test_utility_properties.dir/test_utility_properties.cpp.o"
  "CMakeFiles/test_utility_properties.dir/test_utility_properties.cpp.o.d"
  "test_utility_properties"
  "test_utility_properties.pdb"
  "test_utility_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_utility_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
