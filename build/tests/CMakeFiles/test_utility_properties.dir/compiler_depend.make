# Empty compiler generated dependencies file for test_utility_properties.
# This may be replaced when dependencies are built.
