# Empty compiler generated dependencies file for test_config_model.
# This may be replaced when dependencies are built.
