file(REMOVE_RECURSE
  "CMakeFiles/test_config_model.dir/test_config_model.cpp.o"
  "CMakeFiles/test_config_model.dir/test_config_model.cpp.o.d"
  "test_config_model"
  "test_config_model.pdb"
  "test_config_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
