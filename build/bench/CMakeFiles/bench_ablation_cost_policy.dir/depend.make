# Empty dependencies file for bench_ablation_cost_policy.
# This may be replaced when dependencies are built.
