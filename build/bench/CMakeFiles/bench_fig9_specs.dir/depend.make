# Empty dependencies file for bench_fig9_specs.
# This may be replaced when dependencies are built.
