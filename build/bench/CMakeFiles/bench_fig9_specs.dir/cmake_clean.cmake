file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_specs.dir/bench_fig9_specs.cpp.o"
  "CMakeFiles/bench_fig9_specs.dir/bench_fig9_specs.cpp.o.d"
  "bench_fig9_specs"
  "bench_fig9_specs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_specs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
