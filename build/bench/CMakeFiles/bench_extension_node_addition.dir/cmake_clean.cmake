file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_node_addition.dir/bench_extension_node_addition.cpp.o"
  "CMakeFiles/bench_extension_node_addition.dir/bench_extension_node_addition.cpp.o.d"
  "bench_extension_node_addition"
  "bench_extension_node_addition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_node_addition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
