# Empty dependencies file for bench_extension_node_addition.
# This may be replaced when dependencies are built.
