# Empty dependencies file for bench_table3_line_breakdown.
# This may be replaced when dependencies are built.
