# Empty compiler generated dependencies file for bench_fig8_kept_paths.
# This may be replaced when dependencies are built.
