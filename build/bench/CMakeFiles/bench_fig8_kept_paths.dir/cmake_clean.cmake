file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_kept_paths.dir/bench_fig8_kept_paths.cpp.o"
  "CMakeFiles/bench_fig8_kept_paths.dir/bench_fig8_kept_paths.cpp.o.d"
  "bench_fig8_kept_paths"
  "bench_fig8_kept_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_kept_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
