# Empty dependencies file for bench_fig5_route_anonymity.
# This may be replaced when dependencies are built.
