# Empty dependencies file for bench_fig14_kh_vs_uc.
# This may be replaced when dependencies are built.
