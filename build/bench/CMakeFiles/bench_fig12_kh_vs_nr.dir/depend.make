# Empty dependencies file for bench_fig12_kh_vs_nr.
# This may be replaced when dependencies are built.
