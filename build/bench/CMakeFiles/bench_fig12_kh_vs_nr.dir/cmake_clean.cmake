file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_kh_vs_nr.dir/bench_fig12_kh_vs_nr.cpp.o"
  "CMakeFiles/bench_fig12_kh_vs_nr.dir/bench_fig12_kh_vs_nr.cpp.o.d"
  "bench_fig12_kh_vs_nr"
  "bench_fig12_kh_vs_nr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_kh_vs_nr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
