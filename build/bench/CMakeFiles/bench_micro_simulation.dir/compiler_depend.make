# Empty compiler generated dependencies file for bench_micro_simulation.
# This may be replaced when dependencies are built.
