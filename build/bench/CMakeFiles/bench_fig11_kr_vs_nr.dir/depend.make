# Empty dependencies file for bench_fig11_kr_vs_nr.
# This may be replaced when dependencies are built.
