# Empty dependencies file for bench_fig13_kr_vs_uc.
# This may be replaced when dependencies are built.
