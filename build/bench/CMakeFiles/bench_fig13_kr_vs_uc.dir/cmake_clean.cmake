file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_kr_vs_uc.dir/bench_fig13_kr_vs_uc.cpp.o"
  "CMakeFiles/bench_fig13_kr_vs_uc.dir/bench_fig13_kr_vs_uc.cpp.o.d"
  "bench_fig13_kr_vs_uc"
  "bench_fig13_kr_vs_uc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_kr_vs_uc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
