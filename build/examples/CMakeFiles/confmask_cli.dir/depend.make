# Empty dependencies file for confmask_cli.
# This may be replaced when dependencies are built.
