file(REMOVE_RECURSE
  "CMakeFiles/confmask_cli.dir/confmask_cli.cpp.o"
  "CMakeFiles/confmask_cli.dir/confmask_cli.cpp.o.d"
  "confmask_cli"
  "confmask_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confmask_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
