file(REMOVE_RECURSE
  "CMakeFiles/collaborative_debugging.dir/collaborative_debugging.cpp.o"
  "CMakeFiles/collaborative_debugging.dir/collaborative_debugging.cpp.o.d"
  "collaborative_debugging"
  "collaborative_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collaborative_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
