# Empty dependencies file for collaborative_debugging.
# This may be replaced when dependencies are built.
