# Empty compiler generated dependencies file for attack_evaluation.
# This may be replaced when dependencies are built.
