file(REMOVE_RECURSE
  "CMakeFiles/attack_evaluation.dir/attack_evaluation.cpp.o"
  "CMakeFiles/attack_evaluation.dir/attack_evaluation.cpp.o.d"
  "attack_evaluation"
  "attack_evaluation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_evaluation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
