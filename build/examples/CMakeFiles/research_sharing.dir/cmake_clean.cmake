file(REMOVE_RECURSE
  "CMakeFiles/research_sharing.dir/research_sharing.cpp.o"
  "CMakeFiles/research_sharing.dir/research_sharing.cpp.o.d"
  "research_sharing"
  "research_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/research_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
