# Empty compiler generated dependencies file for research_sharing.
# This may be replaced when dependencies are built.
