file(REMOVE_RECURSE
  "CMakeFiles/confmask_util.dir/ipv4.cpp.o"
  "CMakeFiles/confmask_util.dir/ipv4.cpp.o.d"
  "CMakeFiles/confmask_util.dir/prefix_allocator.cpp.o"
  "CMakeFiles/confmask_util.dir/prefix_allocator.cpp.o.d"
  "CMakeFiles/confmask_util.dir/rng.cpp.o"
  "CMakeFiles/confmask_util.dir/rng.cpp.o.d"
  "CMakeFiles/confmask_util.dir/strings.cpp.o"
  "CMakeFiles/confmask_util.dir/strings.cpp.o.d"
  "libconfmask_util.a"
  "libconfmask_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confmask_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
