# Empty dependencies file for confmask_util.
# This may be replaced when dependencies are built.
