file(REMOVE_RECURSE
  "libconfmask_util.a"
)
