
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nethide/nethide.cpp" "src/nethide/CMakeFiles/confmask_nethide.dir/nethide.cpp.o" "gcc" "src/nethide/CMakeFiles/confmask_nethide.dir/nethide.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/confmask_core.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/confmask_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/confmask_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/confmask_config.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/confmask_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
