file(REMOVE_RECURSE
  "CMakeFiles/confmask_nethide.dir/nethide.cpp.o"
  "CMakeFiles/confmask_nethide.dir/nethide.cpp.o.d"
  "libconfmask_nethide.a"
  "libconfmask_nethide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confmask_nethide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
