file(REMOVE_RECURSE
  "libconfmask_nethide.a"
)
