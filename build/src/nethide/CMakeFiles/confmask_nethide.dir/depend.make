# Empty dependencies file for confmask_nethide.
# This may be replaced when dependencies are built.
