# Empty dependencies file for confmask_netgen.
# This may be replaced when dependencies are built.
