file(REMOVE_RECURSE
  "CMakeFiles/confmask_netgen.dir/boilerplate.cpp.o"
  "CMakeFiles/confmask_netgen.dir/boilerplate.cpp.o.d"
  "CMakeFiles/confmask_netgen.dir/builder.cpp.o"
  "CMakeFiles/confmask_netgen.dir/builder.cpp.o.d"
  "CMakeFiles/confmask_netgen.dir/networks.cpp.o"
  "CMakeFiles/confmask_netgen.dir/networks.cpp.o.d"
  "libconfmask_netgen.a"
  "libconfmask_netgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confmask_netgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
