file(REMOVE_RECURSE
  "libconfmask_netgen.a"
)
