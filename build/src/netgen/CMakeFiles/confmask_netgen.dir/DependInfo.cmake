
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netgen/boilerplate.cpp" "src/netgen/CMakeFiles/confmask_netgen.dir/boilerplate.cpp.o" "gcc" "src/netgen/CMakeFiles/confmask_netgen.dir/boilerplate.cpp.o.d"
  "/root/repo/src/netgen/builder.cpp" "src/netgen/CMakeFiles/confmask_netgen.dir/builder.cpp.o" "gcc" "src/netgen/CMakeFiles/confmask_netgen.dir/builder.cpp.o.d"
  "/root/repo/src/netgen/networks.cpp" "src/netgen/CMakeFiles/confmask_netgen.dir/networks.cpp.o" "gcc" "src/netgen/CMakeFiles/confmask_netgen.dir/networks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/config/CMakeFiles/confmask_config.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/confmask_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
