# Empty dependencies file for confmask_spec.
# This may be replaced when dependencies are built.
