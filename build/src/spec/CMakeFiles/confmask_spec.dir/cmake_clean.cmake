file(REMOVE_RECURSE
  "CMakeFiles/confmask_spec.dir/policies.cpp.o"
  "CMakeFiles/confmask_spec.dir/policies.cpp.o.d"
  "libconfmask_spec.a"
  "libconfmask_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confmask_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
