file(REMOVE_RECURSE
  "libconfmask_spec.a"
)
