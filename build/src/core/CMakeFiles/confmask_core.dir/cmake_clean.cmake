file(REMOVE_RECURSE
  "CMakeFiles/confmask_core.dir/confmask.cpp.o"
  "CMakeFiles/confmask_core.dir/confmask.cpp.o.d"
  "CMakeFiles/confmask_core.dir/deanonymize.cpp.o"
  "CMakeFiles/confmask_core.dir/deanonymize.cpp.o.d"
  "CMakeFiles/confmask_core.dir/filters.cpp.o"
  "CMakeFiles/confmask_core.dir/filters.cpp.o.d"
  "CMakeFiles/confmask_core.dir/metrics.cpp.o"
  "CMakeFiles/confmask_core.dir/metrics.cpp.o.d"
  "CMakeFiles/confmask_core.dir/node_addition.cpp.o"
  "CMakeFiles/confmask_core.dir/node_addition.cpp.o.d"
  "CMakeFiles/confmask_core.dir/original_index.cpp.o"
  "CMakeFiles/confmask_core.dir/original_index.cpp.o.d"
  "CMakeFiles/confmask_core.dir/route_anonymity.cpp.o"
  "CMakeFiles/confmask_core.dir/route_anonymity.cpp.o.d"
  "CMakeFiles/confmask_core.dir/route_equivalence.cpp.o"
  "CMakeFiles/confmask_core.dir/route_equivalence.cpp.o.d"
  "CMakeFiles/confmask_core.dir/strawman.cpp.o"
  "CMakeFiles/confmask_core.dir/strawman.cpp.o.d"
  "CMakeFiles/confmask_core.dir/topology_anonymization.cpp.o"
  "CMakeFiles/confmask_core.dir/topology_anonymization.cpp.o.d"
  "CMakeFiles/confmask_core.dir/utility_properties.cpp.o"
  "CMakeFiles/confmask_core.dir/utility_properties.cpp.o.d"
  "libconfmask_core.a"
  "libconfmask_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confmask_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
