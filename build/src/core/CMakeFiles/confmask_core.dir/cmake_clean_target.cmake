file(REMOVE_RECURSE
  "libconfmask_core.a"
)
