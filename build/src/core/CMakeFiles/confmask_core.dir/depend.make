# Empty dependencies file for confmask_core.
# This may be replaced when dependencies are built.
