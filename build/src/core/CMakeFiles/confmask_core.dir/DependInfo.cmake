
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/confmask.cpp" "src/core/CMakeFiles/confmask_core.dir/confmask.cpp.o" "gcc" "src/core/CMakeFiles/confmask_core.dir/confmask.cpp.o.d"
  "/root/repo/src/core/deanonymize.cpp" "src/core/CMakeFiles/confmask_core.dir/deanonymize.cpp.o" "gcc" "src/core/CMakeFiles/confmask_core.dir/deanonymize.cpp.o.d"
  "/root/repo/src/core/filters.cpp" "src/core/CMakeFiles/confmask_core.dir/filters.cpp.o" "gcc" "src/core/CMakeFiles/confmask_core.dir/filters.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/confmask_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/confmask_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/node_addition.cpp" "src/core/CMakeFiles/confmask_core.dir/node_addition.cpp.o" "gcc" "src/core/CMakeFiles/confmask_core.dir/node_addition.cpp.o.d"
  "/root/repo/src/core/original_index.cpp" "src/core/CMakeFiles/confmask_core.dir/original_index.cpp.o" "gcc" "src/core/CMakeFiles/confmask_core.dir/original_index.cpp.o.d"
  "/root/repo/src/core/route_anonymity.cpp" "src/core/CMakeFiles/confmask_core.dir/route_anonymity.cpp.o" "gcc" "src/core/CMakeFiles/confmask_core.dir/route_anonymity.cpp.o.d"
  "/root/repo/src/core/route_equivalence.cpp" "src/core/CMakeFiles/confmask_core.dir/route_equivalence.cpp.o" "gcc" "src/core/CMakeFiles/confmask_core.dir/route_equivalence.cpp.o.d"
  "/root/repo/src/core/strawman.cpp" "src/core/CMakeFiles/confmask_core.dir/strawman.cpp.o" "gcc" "src/core/CMakeFiles/confmask_core.dir/strawman.cpp.o.d"
  "/root/repo/src/core/topology_anonymization.cpp" "src/core/CMakeFiles/confmask_core.dir/topology_anonymization.cpp.o" "gcc" "src/core/CMakeFiles/confmask_core.dir/topology_anonymization.cpp.o.d"
  "/root/repo/src/core/utility_properties.cpp" "src/core/CMakeFiles/confmask_core.dir/utility_properties.cpp.o" "gcc" "src/core/CMakeFiles/confmask_core.dir/utility_properties.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/routing/CMakeFiles/confmask_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/confmask_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/confmask_config.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/confmask_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
