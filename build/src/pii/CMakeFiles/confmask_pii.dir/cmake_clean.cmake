file(REMOVE_RECURSE
  "CMakeFiles/confmask_pii.dir/crypto_pan.cpp.o"
  "CMakeFiles/confmask_pii.dir/crypto_pan.cpp.o.d"
  "CMakeFiles/confmask_pii.dir/pii_addon.cpp.o"
  "CMakeFiles/confmask_pii.dir/pii_addon.cpp.o.d"
  "libconfmask_pii.a"
  "libconfmask_pii.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confmask_pii.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
