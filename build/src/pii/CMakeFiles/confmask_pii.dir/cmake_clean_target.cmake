file(REMOVE_RECURSE
  "libconfmask_pii.a"
)
