
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pii/crypto_pan.cpp" "src/pii/CMakeFiles/confmask_pii.dir/crypto_pan.cpp.o" "gcc" "src/pii/CMakeFiles/confmask_pii.dir/crypto_pan.cpp.o.d"
  "/root/repo/src/pii/pii_addon.cpp" "src/pii/CMakeFiles/confmask_pii.dir/pii_addon.cpp.o" "gcc" "src/pii/CMakeFiles/confmask_pii.dir/pii_addon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/config/CMakeFiles/confmask_config.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/confmask_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
