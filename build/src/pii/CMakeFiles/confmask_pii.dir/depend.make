# Empty dependencies file for confmask_pii.
# This may be replaced when dependencies are built.
