file(REMOVE_RECURSE
  "CMakeFiles/confmask_routing.dir/dataplane.cpp.o"
  "CMakeFiles/confmask_routing.dir/dataplane.cpp.o.d"
  "CMakeFiles/confmask_routing.dir/simulation.cpp.o"
  "CMakeFiles/confmask_routing.dir/simulation.cpp.o.d"
  "CMakeFiles/confmask_routing.dir/topology.cpp.o"
  "CMakeFiles/confmask_routing.dir/topology.cpp.o.d"
  "libconfmask_routing.a"
  "libconfmask_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confmask_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
