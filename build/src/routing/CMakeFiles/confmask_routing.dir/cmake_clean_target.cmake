file(REMOVE_RECURSE
  "libconfmask_routing.a"
)
