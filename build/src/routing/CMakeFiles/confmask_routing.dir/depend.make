# Empty dependencies file for confmask_routing.
# This may be replaced when dependencies are built.
