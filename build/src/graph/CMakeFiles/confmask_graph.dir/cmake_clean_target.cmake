file(REMOVE_RECURSE
  "libconfmask_graph.a"
)
