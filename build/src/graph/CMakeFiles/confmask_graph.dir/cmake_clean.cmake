file(REMOVE_RECURSE
  "CMakeFiles/confmask_graph.dir/graph.cpp.o"
  "CMakeFiles/confmask_graph.dir/graph.cpp.o.d"
  "CMakeFiles/confmask_graph.dir/k_degree_anonymize.cpp.o"
  "CMakeFiles/confmask_graph.dir/k_degree_anonymize.cpp.o.d"
  "libconfmask_graph.a"
  "libconfmask_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confmask_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
