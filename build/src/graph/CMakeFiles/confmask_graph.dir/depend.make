# Empty dependencies file for confmask_graph.
# This may be replaced when dependencies are built.
