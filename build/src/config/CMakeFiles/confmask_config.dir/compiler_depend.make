# Empty compiler generated dependencies file for confmask_config.
# This may be replaced when dependencies are built.
