
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/config/emit.cpp" "src/config/CMakeFiles/confmask_config.dir/emit.cpp.o" "gcc" "src/config/CMakeFiles/confmask_config.dir/emit.cpp.o.d"
  "/root/repo/src/config/model.cpp" "src/config/CMakeFiles/confmask_config.dir/model.cpp.o" "gcc" "src/config/CMakeFiles/confmask_config.dir/model.cpp.o.d"
  "/root/repo/src/config/parse.cpp" "src/config/CMakeFiles/confmask_config.dir/parse.cpp.o" "gcc" "src/config/CMakeFiles/confmask_config.dir/parse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/confmask_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
