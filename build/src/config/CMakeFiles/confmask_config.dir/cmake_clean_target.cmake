file(REMOVE_RECURSE
  "libconfmask_config.a"
)
