file(REMOVE_RECURSE
  "CMakeFiles/confmask_config.dir/emit.cpp.o"
  "CMakeFiles/confmask_config.dir/emit.cpp.o.d"
  "CMakeFiles/confmask_config.dir/model.cpp.o"
  "CMakeFiles/confmask_config.dir/model.cpp.o.d"
  "CMakeFiles/confmask_config.dir/parse.cpp.o"
  "CMakeFiles/confmask_config.dir/parse.cpp.o.d"
  "libconfmask_config.a"
  "libconfmask_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confmask_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
